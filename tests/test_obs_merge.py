"""Cross-rank trace merge: one Perfetto-loadable timeline per job.

``run_spmd(..., trace=path)`` leaves one ``{path}.rank{R}`` file per rank;
the post-run merge folds them into a single Chrome-trace JSON whose tracks
are time-ordered on the shared job-epoch axis and whose send->recv pairs
are resolved into flow arrows by (peer, tag, sequence).  The contract must
hold identically on the in-process thread backend and both forked
backends (process, socket) — the clock alignment and the flow matching
are exactly the pieces a forked world could silently break.
"""

import json
import os

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.obs import tracer
from repro.obs.export import merge_traces, salvage_traces, validate, validate_file


def _prog(comm):
    """A little of everything: pt2pt, barrier, blocking + nonblocking."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    req = comm.irecv(source=left, tag=7)
    comm.send(np.arange(4.0) + comm.rank, dest=right, tag=7)
    req.wait()
    comm.barrier()
    total = comm.allreduce(np.ones(8) * (comm.rank + 1))
    return float(total[0])


def _load(path):
    with open(path) as fh:
        return json.load(fh)


class TestMergedTrace:
    @pytest.mark.parametrize("nranks", [2, 4])
    def test_thread_backend(self, tmp_path, nranks):
        path = str(tmp_path / "job.trace")
        run_spmd(nranks, _prog, trace=path)
        self._check(path, nranks)

    @pytest.mark.parametrize("backend", ["process", "socket"])
    def test_forked_backends(self, tmp_path, backend):
        path = str(tmp_path / "job.trace")
        run_spmd(4, _prog, backend=backend, trace=path)
        self._check(path, 4)

    def _check(self, path, nranks):
        doc = _load(path)
        assert validate(doc) == [], validate(doc)
        assert doc["otherData"]["nranks"] == nranks
        assert doc["otherData"]["missing_ranks"] == []
        assert doc["otherData"]["unresolved_flows"] == 0
        assert doc["otherData"]["flows"] > 0

        # one named track per rank
        names = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert sorted(names) == list(range(nranks))

        # per-track events time-ordered on the shared axis
        for rank in range(nranks):
            ts = [
                e["ts"]
                for e in doc["traceEvents"]
                if e["ph"] == "X" and e["pid"] == rank
            ]
            assert ts == sorted(ts)
            assert ts, f"rank {rank} track is empty"

        # every flow id appears exactly once as "s" and once as "f"
        starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
        ends = [e for e in doc["traceEvents"] if e["ph"] == "f"]
        assert len(starts) == len(ends) == doc["otherData"]["flows"]
        assert {e["id"] for e in starts} == {e["id"] for e in ends}

        # rank files were consumed by the merge
        for rank in range(nranks):
            assert not os.path.exists(tracer.rank_file(path, rank))

    def test_env_var_enables_tracing(self, tmp_path, monkeypatch):
        path = str(tmp_path / "env.trace")
        monkeypatch.setenv(tracer.TRACE_ENV, path)
        run_spmd(2, _prog)
        assert validate_file(path) == []

    def test_untraced_run_writes_nothing(self, tmp_path):
        run_spmd(2, _prog)
        assert os.listdir(tmp_path) == []


class TestMergeEdgeCases:
    def _write_rank(self, path, rank, events):
        with open(tracer.rank_file(path, rank), "w") as fh:
            fh.write(json.dumps({"k": "M", "rank": rank, "host": "h", "pid": 1}) + "\n")
            for ev in events:
                fh.write(json.dumps(ev) + "\n")
            fh.write(json.dumps({"k": "Z", "open": 0}) + "\n")

    def test_missing_rank_tolerated(self, tmp_path):
        path = str(tmp_path / "m.trace")
        self._write_rank(path, 0, [
            {"k": "X", "n": "a", "c": "t", "ts": 1.0, "d": 2.0, "a": {}},
        ])
        merge_traces(path, 3)
        doc = _load(path)
        assert doc["otherData"]["missing_ranks"] == [1, 2]
        assert any("missing" in p for p in validate(doc))

    def test_unmatched_flow_reported(self, tmp_path):
        path = str(tmp_path / "u.trace")
        self._write_rank(path, 0, [
            {"k": "s", "p": 1, "t": "7", "q": 0, "ts": 1.0},
        ])
        self._write_rank(path, 1, [])
        merge_traces(path, 2)
        doc = _load(path)
        assert doc["otherData"]["unresolved_flows"] == 1
        assert any("unresolved" in p for p in validate(doc))

    def test_unclosed_span_reported(self, tmp_path):
        path = str(tmp_path / "o.trace")
        with open(tracer.rank_file(path, 0), "w") as fh:
            fh.write(json.dumps({"k": "M", "rank": 0, "host": "h", "pid": 1}) + "\n")
            fh.write(json.dumps({"k": "Z", "open": 2}) + "\n")
        merge_traces(path, 1)
        doc = _load(path)
        assert doc["otherData"]["unclosed_spans"] == {"0": 2}
        assert any("unclosed" in p for p in validate(doc))


class TestSalvage:
    """``--salvage``: merging whatever a dead job left behind.

    A job that crashes before the launcher's merge step strands its
    ``{path}.rank*`` files; salvage folds the survivors into a loadable
    trace and annotates the ranks that never wrote one.
    """

    def test_salvage_after_hard_crash(self, tmp_path):
        path = str(tmp_path / "dead.trace")
        with pytest.raises(Exception):
            run_spmd(
                4, _prog, backend="process", trace=path,
                faults="crash@rank2:after=0",
                timeout=20.0, detect_interval=0.2,
            )
        assert not os.path.exists(path)  # the merge never ran
        leftovers = [
            r for r in range(4)
            if os.path.exists(tracer.rank_file(path, r))
        ]
        assert leftovers  # survivors flushed their files

        out, found, missing = salvage_traces(path, nranks=4)
        assert out == path and os.path.exists(path)
        assert 2 in missing  # the os._exit'd rank left nothing
        doc = _load(path)
        assert doc["otherData"]["missing_ranks"] == missing
        # Salvaged traces are structurally valid apart from the flagged
        # missing ranks / severed flows.
        problems = validate(doc)
        assert all(
            "missing" in p or "unresolved" in p or "unclosed" in p
            for p in problems
        ), problems

    def test_world_size_inferred_from_surviving_files(self, tmp_path):
        path = str(tmp_path / "t.trace")
        for rank in (0, 1, 3):
            with open(tracer.rank_file(path, rank), "w") as fh:
                fh.write(json.dumps({"k": "M", "rank": rank, "host": "h", "pid": 1}) + "\n")
                fh.write(json.dumps({"k": "Z", "open": 0}) + "\n")
        _, found, missing = salvage_traces(path)
        assert found == [0, 1, 3]
        assert missing == [2]  # inferred world size 4: the gap shows up

    def test_nothing_to_salvage_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="salvage"):
            salvage_traces(str(tmp_path / "ghost.trace"))

    def test_cli_salvage_flag(self, tmp_path, capsys):
        from repro.obs import analyze

        path = str(tmp_path / "cli.trace")
        for rank in (0, 2):
            with open(tracer.rank_file(path, rank), "w") as fh:
                fh.write(json.dumps({"k": "M", "rank": rank, "host": "h", "pid": 1}) + "\n")
                fh.write(json.dumps(
                    {"k": "X", "n": "step", "c": "train", "ts": 1.0, "d": 2.0, "a": {}}
                ) + "\n")
                fh.write(json.dumps({"k": "Z", "open": 0}) + "\n")
        rc = analyze.main([path, "--salvage"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "salvaged 2 rank file(s)" in out
        assert "missing ranks" in out and "1" in out
