"""Abort propagation through the scheduled collectives (PR 5's wire
algorithms): a rank crashed at *any* schedule phase must take the whole job
down promptly, with every survivor's ``CommAborted`` naming the failed rank
— never a hang.

The crash points are derived from the compiled schedules themselves: for
each algorithm the crashing rank's sends are counted and the fault is
injected at the first send (reduce-scatter / exchange phase) and at the
last (allgather / final phase), so both halves of every algorithm are
covered without hard-coding step indices.
"""

import numpy as np
import pytest

from repro.comm import CommAborted, InjectedCrash, run_spmd
from repro.comm import algorithms as alg
from tests.conftest import reduce_for_process

NRANKS = 4
CRASH_RANK = 2


def _send_count(algorithm: str, rank: int, p: int = NRANKS) -> int:
    sched = alg.compile_allreduce(p, algorithm)[rank]
    return sum(1 for s in sched if s.kind == "send")


def _phase_points(algorithm: str) -> list[tuple[str, int]]:
    """(phase label, send index) pairs: first send and last send."""
    n = _send_count(algorithm, CRASH_RANK)
    assert n >= 2, f"{algorithm} has too few sends to split into phases"
    return [("first-phase", 0), ("last-phase", n - 1)]


def _assert_survivors_name_crashed_rank(out, backend):
    """Every non-crashed rank got CommAborted naming CRASH_RANK; the
    crashed rank died by InjectedCrash (thread) or is reported dead
    (process)."""
    for r, res in enumerate(out):
        if r == CRASH_RANK:
            if backend == "thread":
                assert isinstance(res, InjectedCrash), res
            else:
                assert isinstance(res, CommAborted), res
            continue
        assert isinstance(res, CommAborted), f"rank {r}: {res!r}"
        assert f"rank {CRASH_RANK}" in str(res), f"rank {r}: {res}"


PHASES = [
    (algorithm, label, after)
    for algorithm in alg.REDUCTION_ALGORITHMS
    for label, after in _phase_points(algorithm)
]


class TestScheduledAllreduceAbort:
    @pytest.mark.parametrize(
        "algorithm,label,after",
        PHASES,
        ids=[f"{a}-{lbl}" for a, lbl, _ in PHASES],
    )
    def test_crash_at_phase_propagates(self, backend, algorithm, label, after):
        reduce_for_process(
            backend,
            heavy=label != "first-phase",
            reason="one phase per algorithm is enough with real forks",
        )

        def prog(comm):
            x = np.arange(16, dtype=np.float64) * (comm.rank + 1)
            out = comm.allreduce(x, algorithm=algorithm)
            # A survivor that already held all its pieces completes the
            # collective; the abort surfaces at its *next* operation —
            # exactly MPI's semantics.  The barrier is that operation.
            comm.barrier()
            return out

        out = run_spmd(
            NRANKS,
            prog,
            backend=backend,
            faults=f"crash@rank{CRASH_RANK}:tag=#alg:after={after}",
            allow_failures=True,
            timeout=20.0,
            detect_interval=0.2,
        )
        _assert_survivors_name_crashed_rank(out, backend)

    @pytest.mark.parametrize("algorithm", sorted(alg.REDUCTION_ALGORITHMS))
    def test_crash_in_nonblocking_schedule(self, backend, algorithm):
        """The progressive (iallreduce) runner must also unwind cleanly."""
        reduce_for_process(
            backend,
            heavy=algorithm != "ring",
            reason="one algorithm exercises the nonblocking path with forks",
        )

        def prog(comm):
            req = comm.iallreduce(np.ones(16), algorithm=algorithm)
            out = req.wait()
            comm.barrier()
            return out

        out = run_spmd(
            NRANKS,
            prog,
            backend=backend,
            faults=f"crash@rank{CRASH_RANK}:tag=#alg",
            allow_failures=True,
            timeout=20.0,
            detect_interval=0.2,
        )
        _assert_survivors_name_crashed_rank(out, backend)


class TestTreeCollectiveAbort:
    """Binomial-tree rooted collectives (bcast/reduce) under a crash."""

    @pytest.mark.parametrize("op", ["bcast", "reduce"])
    def test_crash_in_tree_schedule(self, backend, op):
        reduce_for_process(
            backend,
            heavy=op != "bcast",
            reason="one tree op exercises the path with real forks",
        )

        def prog(comm):
            x = np.ones(16) * (comm.rank + 1)
            if op == "bcast":
                out = comm.bcast(
                    x if comm.rank == 0 else None, root=0, algorithm="binomial"
                )
            else:
                out = comm.reduce(x, root=0, algorithm="binomial")
            comm.barrier()
            return out

        # In a binomial bcast the crashing rank may be a leaf (no sends),
        # so arm the crash on its tree *receive*; in reduce every non-root
        # sends exactly once, so the send point fires.
        point = "recv" if op == "bcast" else "send"
        out = run_spmd(
            NRANKS,
            prog,
            backend=backend,
            faults=f"crash@rank{CRASH_RANK}:point={point}:tag=#alg",
            allow_failures=True,
            timeout=20.0,
            detect_interval=0.2,
        )
        for r, res in enumerate(out):
            if r == CRASH_RANK:
                assert isinstance(res, (InjectedCrash, CommAborted)), res
            else:
                assert isinstance(res, CommAborted), f"rank {r}: {res!r}"
                assert f"rank {CRASH_RANK}" in str(res)

    def test_no_hang_when_crash_precedes_any_send(self, backend):
        """A rank that dies before its first schedule send (recv-point
        crash) still takes the job down promptly."""
        reduce_for_process(backend, heavy=False, reason="")

        def prog(comm):
            out = comm.allreduce(np.ones(16), algorithm="ring")
            comm.barrier()
            return out

        out = run_spmd(
            NRANKS,
            prog,
            backend=backend,
            faults=f"crash@rank{CRASH_RANK}:point=recv:tag=#alg",
            allow_failures=True,
            timeout=20.0,
            detect_interval=0.2,
        )
        _assert_survivors_name_crashed_rank(out, backend)
