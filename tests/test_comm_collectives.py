"""Collective operations and sub-communicators."""

import numpy as np
import pytest

from repro.comm import run_spmd


class TestBasicCollectives:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 8])
    def test_barrier(self, nranks):
        def prog(comm):
            for _ in range(3):
                comm.barrier()
            return comm.rank

        assert run_spmd(nranks, prog) == list(range(nranks))

    @pytest.mark.parametrize("nranks", [2, 4, 5])
    def test_bcast(self, nranks):
        def prog(comm):
            payload = np.arange(10) if comm.rank == 1 else None
            return comm.bcast(payload, root=1)

        for got in run_spmd(nranks, prog):
            np.testing.assert_array_equal(got, np.arange(10))

    def test_bcast_result_is_private_copy(self):
        def prog(comm):
            got = comm.bcast(np.zeros(4), root=0)
            got += comm.rank  # must not leak to other ranks
            comm.barrier()
            return float(got[0])

        assert run_spmd(3, prog) == [0.0, 1.0, 2.0]

    @pytest.mark.parametrize("nranks", [2, 4, 7])
    def test_allgather(self, nranks):
        def prog(comm):
            return comm.allgather(comm.rank**2)

        for got in run_spmd(nranks, prog):
            assert got == [r**2 for r in range(nranks)]

    def test_gather_scatter(self):
        def prog(comm):
            gathered = comm.gather(comm.rank + 10, root=2)
            if comm.rank == 2:
                assert gathered == [10, 11, 12, 13]
            else:
                assert gathered is None
            out = comm.scatter(
                [f"item{i}" for i in range(comm.size)] if comm.rank == 2 else None,
                root=2,
            )
            return out

        assert run_spmd(4, prog) == [f"item{i}" for i in range(4)]

    def test_scatter_wrong_length(self):
        def prog(comm):
            comm.scatter(["only-one"], root=0)

        with pytest.raises(ValueError, match="exactly 2"):
            run_spmd(2, prog, timeout=10)


class TestReductions:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 6])
    def test_allreduce_sum_scalar(self, nranks):
        def prog(comm):
            return comm.allreduce(comm.rank + 1)

        expected = sum(range(1, nranks + 1))
        assert run_spmd(nranks, prog) == [expected] * nranks

    def test_allreduce_sum_array(self):
        def prog(comm):
            return comm.allreduce(np.full(5, float(comm.rank)))

        for got in run_spmd(4, prog):
            np.testing.assert_array_equal(got, np.full(5, 6.0))

    @pytest.mark.parametrize("op,expected", [("max", 3), ("min", 0), ("prod", 0)])
    def test_allreduce_ops(self, op, expected):
        def prog(comm):
            return comm.allreduce(comm.rank, op=op)

        assert run_spmd(4, prog) == [expected] * 4

    def test_allreduce_deterministic_order(self):
        """Summation happens in comm-rank order, so results are identical
        across ranks even for floating point."""

        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            return comm.allreduce(rng.standard_normal(64))

        results = run_spmd(4, prog)
        for got in results[1:]:
            np.testing.assert_array_equal(got, results[0])

    def test_allreduce_unknown_op(self):
        def prog(comm):
            comm.allreduce(1, op="xor")

        with pytest.raises(ValueError, match="unknown reduction"):
            run_spmd(2, prog, timeout=10)

    def test_reduce(self):
        def prog(comm):
            return comm.reduce(comm.rank, root=1)

        assert run_spmd(3, prog) == [None, 3, None]

    def test_reduce_scatter(self):
        def prog(comm):
            # Rank r contributes value (r+1)*10 + j for destination j.
            parts = [np.array([(comm.rank + 1) * 10 + j]) for j in range(comm.size)]
            return comm.reduce_scatter(parts)

        results = run_spmd(3, prog)
        # Destination j receives sum over r of (r+1)*10 + j = 60 + 3j.
        for j, got in enumerate(results):
            np.testing.assert_array_equal(got, np.array([60 + 3 * j]))


class TestAlltoall:
    @pytest.mark.parametrize("nranks", [2, 3, 4])
    def test_alltoall_matrix_transpose(self, nranks):
        def prog(comm):
            sends = [(comm.rank, j) for j in range(comm.size)]
            return comm.alltoall(sends)

        results = run_spmd(nranks, prog)
        for j, got in enumerate(results):
            assert got == [(i, j) for i in range(nranks)]

    def test_alltoall_wrong_length(self):
        def prog(comm):
            comm.alltoall([1])

        with pytest.raises(ValueError, match="exactly 2"):
            run_spmd(2, prog, timeout=10)


class TestSplit:
    def test_split_even_odd(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            total = sub.allreduce(comm.rank)
            return (sub.rank, sub.size, total)

        results = run_spmd(4, prog)
        # Evens {0,2} and odds {1,3}.
        assert results[0] == (0, 2, 2)
        assert results[2] == (1, 2, 2)
        assert results[1] == (0, 2, 4)
        assert results[3] == (1, 2, 4)

    def test_split_with_key_reorders(self):
        def prog(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reverse order
            return sub.rank

        assert run_spmd(3, prog) == [2, 1, 0]

    def test_split_undefined_color(self):
        def prog(comm):
            sub = comm.split(color=None if comm.rank == 0 else 1)
            if comm.rank == 0:
                assert sub is None
                return -1
            return sub.size

        assert run_spmd(3, prog) == [-1, 2, 2]

    def test_nested_split_grid(self):
        """4 ranks as a 2x2 grid: row comms and column comms coexist."""

        def prog(comm):
            row, col = divmod(comm.rank, 2)
            row_comm = comm.split(color=row)
            col_comm = comm.split(color=col)
            row_sum = row_comm.allreduce(comm.rank)
            col_sum = col_comm.allreduce(comm.rank)
            return (row_sum, col_sum)

        results = run_spmd(4, prog)
        assert results == [(1, 2), (1, 4), (5, 2), (5, 4)]

    def test_traffic_isolated_between_split_comms(self):
        """Messages on a sub-communicator don't collide with the parent's."""

        def prog(comm):
            sub = comm.split(color=comm.rank // 2)
            partner = 1 - sub.rank
            got_sub = sub.sendrecv(("sub", comm.rank), dest=partner, source=partner)
            got_world = comm.sendrecv(
                ("world", comm.rank),
                dest=(comm.rank + 1) % comm.size,
                source=(comm.rank - 1) % comm.size,
            )
            return got_sub, got_world

        results = run_spmd(4, prog)
        assert results[0][0] == ("sub", 1)
        assert results[3][1] == ("world", 2)

    def test_dup_is_independent(self):
        def prog(comm):
            dup = comm.dup()
            dup.send("on-dup", dest=comm.rank, tag=9)
            assert dup.recv(source=comm.rank, tag=9) == "on-dup"
            return comm.allreduce(1)

        assert run_spmd(2, prog) == [2, 2]


class TestWorldRankMapping:
    def test_translate(self):
        def prog(comm):
            sub = comm.split(color=comm.rank % 2)
            return [sub.translate(i) for i in range(sub.size)]

        results = run_spmd(4, prog)
        assert results[0] == [0, 2]
        assert results[1] == [1, 3]
