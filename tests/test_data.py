"""Synthetic datasets: shapes, determinism, learnable labels."""

import numpy as np
import pytest

from repro.data import MeshTanglingDataset, SyntheticImageNet
from repro.data.mesh_tangling import N_CHANNELS


class TestMeshTangling:
    def test_shapes_match_paper(self):
        ds = MeshTanglingDataset(resolution=64)
        x, y = ds.sample(0)
        assert x.shape == (18, 64, 64)  # "18 channels" per the paper
        assert N_CHANNELS == 18
        assert y.shape == (1, 64, 64)
        assert set(np.unique(y)) <= {0.0, 1.0}

    def test_deterministic_by_index_and_seed(self):
        ds = MeshTanglingDataset(resolution=32, seed=7)
        x1, y1 = ds.sample(3)
        x2, y2 = ds.sample(3)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)
        x3, _ = ds.sample(4)
        assert not np.array_equal(x1, x3)

    def test_labels_nondegenerate(self):
        """Tangling pixels exist but are a minority (realistic incipience)."""
        ds = MeshTanglingDataset(resolution=128, seed=0)
        frac = ds.positive_fraction(n=4)
        assert 0.005 < frac < 0.6

    def test_labels_follow_jacobian_channel(self):
        """The label is derivable from the inputs (det channel), so the
        task is learnable — channel 12 is the Jacobian determinant."""
        ds = MeshTanglingDataset(resolution=64, seed=1)
        x, y = ds.sample(0)
        det = x[12]
        predicted = (det < ds.tangle_threshold).astype(float)
        np.testing.assert_array_equal(predicted, y[0])

    def test_label_stride_downsampling(self):
        ds = MeshTanglingDataset(resolution=64, label_stride=4)
        x, y = ds.sample(0)
        assert y.shape == (1, 16, 16)

    def test_batch_stacking(self):
        ds = MeshTanglingDataset(resolution=32)
        x, y = ds.batch(3)
        assert x.shape == (3, 18, 32, 32) and y.shape == (3, 1, 32, 32)

    def test_min_resolution(self):
        with pytest.raises(ValueError):
            MeshTanglingDataset(resolution=4)

    def test_fields_are_finite_and_varied(self):
        ds = MeshTanglingDataset(resolution=32)
        x, _ = ds.sample(0)
        assert np.isfinite(x).all()
        assert (x.std(axis=(1, 2)) > 1e-6).all()  # no dead channels


class TestSyntheticImageNet:
    def test_shapes(self):
        ds = SyntheticImageNet(image_size=32, num_classes=10)
        x, label = ds.sample(0)
        assert x.shape == (3, 32, 32)
        assert 0 <= label < 10

    def test_batch(self):
        ds = SyntheticImageNet(image_size=16, num_classes=5)
        x, y = ds.batch(4)
        assert x.shape == (4, 3, 16, 16) and y.shape == (4,)

    def test_deterministic(self):
        ds = SyntheticImageNet(image_size=16, seed=3)
        x1, l1 = ds.sample(5)
        x2, l2 = ds.sample(5)
        np.testing.assert_array_equal(x1, x2)
        assert l1 == l2

    def test_class_signal_present(self):
        """Same-class images correlate more than different-class images."""
        ds = SyntheticImageNet(image_size=16, num_classes=2, seed=0)
        by_class = {0: [], 1: []}
        i = 0
        while any(len(v) < 2 for v in by_class.values()):
            x, label = ds.sample(i)
            if len(by_class[label]) < 2:
                by_class[label].append(x.ravel())
            i += 1

        def corr(a, b):
            return float(np.corrcoef(a, b)[0, 1])

        same = corr(*by_class[0])
        diff = corr(by_class[0][0], by_class[1][0])
        assert same > diff
