"""Integration: overlapped bucketed gradient reduction == blocking path.

The overlapped reducer concatenates gradients into buckets and reduces them
with nonblocking allreduces; with the bitwise-reference
``collective_algorithm="direct"`` it performs the *identical* element-wise
additions in the identical comm-rank order — so whole training runs must be
bitwise equal to the blocking path, for every strategy and bucket size, and
regardless of the zero-copy boundary mode.  (The scheduled wire algorithms
chunk buckets, so their cross-mode match is allclose instead; that parity
lives in ``tests/test_collective_algorithms.py``.)
"""

import numpy as np
import pytest

from repro.comm import run_spmd, set_zero_copy
from repro.core import DistNetwork, DistTrainer, LayerParallelism, ParallelStrategy
from repro.nn import NetworkSpec, SGD


def conv_net():
    net = NetworkSpec("overlap-test")
    net.add("input", "input", channels=3, height=16, width=16)
    net.add("c1", "conv", ["input"], filters=4, kernel=3, stride=1, pad=1, bias=True)
    net.add("b1", "bn", ["c1"])
    net.add("r1", "relu", ["b1"])
    net.add("p1", "pool", ["r1"], mode="max", kernel=2, stride=2)
    net.add("c2", "conv", ["p1"], filters=8, kernel=3, stride=1, pad=1)
    net.add("r2", "relu", ["c2"])
    net.add("gap", "gap", ["r2"])
    net.add("fc", "fc", ["gap"], units=5, bias=True)
    net.add("loss", "softmax_ce", ["fc"])
    return net


def make_batch(n=8, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 3, 16, 16))
    t = rng.integers(0, 5, size=n)
    return x, t


def train(nranks, strategy, overlap, steps=3, bucket_bytes=None, lr=0.1):
    x, t = make_batch()

    def prog(comm):
        # "direct" pins the comm-rank-order fold, the mode whose bucketed
        # and per-tensor reductions are bitwise interchangeable.
        kwargs = {"overlap_grad_reduce": overlap, "collective_algorithm": "direct"}
        if bucket_bytes is not None:
            kwargs["grad_bucket_bytes"] = bucket_bytes
        net = DistNetwork(conv_net(), comm, strategy, seed=0, **kwargs)
        trainer = DistTrainer(net, SGD(lr=lr, momentum=0.9))
        losses = [trainer.step(x, t) for _ in range(steps)]
        params = {
            k: {p: a.copy() for p, a in v.items()} for k, v in net.params.items()
        }
        return losses, params

    return run_spmd(nranks, prog)


def assert_identical_runs(results_a, results_b):
    for (losses_a, params_a), (losses_b, params_b) in zip(results_a, results_b):
        assert losses_a == losses_b  # bitwise: float equality, no tolerance
        for layer, lparams in params_a.items():
            for pname, arr in lparams.items():
                np.testing.assert_array_equal(arr, params_b[layer][pname])


STRATEGIES = [
    ("sample4", 4, LayerParallelism(sample=4)),
    ("spatial2x2", 4, LayerParallelism(height=2, width=2)),
    ("hybrid2x2x2", 8, LayerParallelism(sample=2, height=2, width=2)),
]


class TestBitwiseStability:
    @pytest.mark.parametrize("name,nranks,par", STRATEGIES, ids=[s[0] for s in STRATEGIES])
    def test_overlapped_matches_blocking(self, name, nranks, par):
        strategy = ParallelStrategy.uniform(par)
        blocking = train(nranks, strategy, overlap=False)
        overlapped = train(nranks, strategy, overlap=True)
        assert_identical_runs(blocking, overlapped)

    @pytest.mark.parametrize("bucket_bytes", [1, 4096, 1 << 22])
    def test_bucket_size_invariance(self, bucket_bytes):
        """One-tensor-per-bucket, mid, and everything-in-one-bucket agree."""
        strategy = ParallelStrategy.uniform(LayerParallelism(sample=4))
        blocking = train(4, strategy, overlap=False)
        overlapped = train(4, strategy, overlap=True, bucket_bytes=bucket_bytes)
        assert_identical_runs(blocking, overlapped)

    def test_zero_copy_regression(self):
        """Full training runs are bitwise identical with zero-copy on/off —
        the no-aliasing proof for the zero-copy send fast path."""
        strategy = ParallelStrategy.uniform(LayerParallelism(sample=2, height=2))
        with_zero_copy = train(4, strategy, overlap=True)
        prev = set_zero_copy(False)
        try:
            with_copies = train(4, strategy, overlap=True)
        finally:
            set_zero_copy(prev)
        assert_identical_runs(with_zero_copy, with_copies)


class TestReducerPlumbing:
    def test_overlap_uses_nonblocking_collectives(self):
        x, t = make_batch()

        def prog(comm):
            net = DistNetwork(
                conv_net(), comm, LayerParallelism(sample=4), seed=0
            )
            trainer = DistTrainer(net, SGD(lr=0.1))
            comm.stats.reset()
            trainer.step(x, t)
            return (
                comm.stats.collectives.get("iallreduce", 0),
                comm.stats.collective_bytes.get("iallreduce", 0),
            )

        for calls, nbytes in run_spmd(4, prog):
            assert calls >= 1
            assert nbytes > 0

    def test_blocking_mode_uses_no_nonblocking_collectives(self):
        x, t = make_batch()

        def prog(comm):
            net = DistNetwork(
                conv_net(), comm, LayerParallelism(sample=4), seed=0,
                overlap_grad_reduce=False,
            )
            trainer = DistTrainer(net, SGD(lr=0.1))
            comm.stats.reset()
            trainer.step(x, t)
            return comm.stats.collectives.get("iallreduce", 0)

        assert all(calls == 0 for calls in run_spmd(4, prog))

    def test_trainer_comm_report(self):
        x, t = make_batch()

        def prog(comm):
            net = DistNetwork(
                conv_net(), comm, LayerParallelism(sample=4), seed=0
            )
            trainer = DistTrainer(net, SGD(lr=0.1))
            trainer.fit([(x, t)] * 2)
            return trainer.comm_report()

        report = run_spmd(4, prog)[0]
        assert "iallreduce" in report
        assert "wait ms" in report and "overlap ms" in report
        assert "steps: 2" in report

    def test_single_rank_passthrough(self):
        """Size-1 worlds have no gradient groups; overlap must be a no-op."""
        strategy = ParallelStrategy.uniform(LayerParallelism())
        blocking = train(1, strategy, overlap=False)
        overlapped = train(1, strategy, overlap=True)
        assert_identical_runs(blocking, overlapped)


class TestIncrementalUpdate:
    """The grad_hook / poll path: the optimizer consumes partially-drained
    buckets as their segments land, bitwise identical to the all-at-once
    step (SGD updates are independent per (layer, param))."""

    def _train(self, nranks, incremental, segment_bytes=None, steps=3):
        x, t = make_batch()
        strategy = ParallelStrategy.uniform(LayerParallelism(sample=nranks))

        def prog(comm):
            net = DistNetwork(
                conv_net(), comm, strategy, seed=0,
                overlap_grad_reduce=True, collective_algorithm="direct",
                grad_segment_bytes=segment_bytes,
            )
            trainer = DistTrainer(
                net, SGD(lr=0.1, momentum=0.9),
                incremental_update=incremental,
            )
            losses = [trainer.step(x, t) for _ in range(steps)]
            params = {
                k: {p: a.copy() for p, a in v.items()}
                for k, v in net.params.items()
            }
            return losses, params

        return run_spmd(nranks, prog)

    def test_incremental_matches_all_at_once(self):
        assert_identical_runs(
            self._train(4, incremental=False), self._train(4, incremental=True)
        )

    def test_incremental_with_segmented_buckets(self):
        """Segmentation only changes when buckets complete, never the
        per-layer gradients — incremental stays bitwise with "direct"."""
        assert_identical_runs(
            self._train(4, incremental=False),
            self._train(4, incremental=True, segment_bytes="auto"),
        )

    def test_grad_hook_fires_once_per_reduced_layer(self):
        x, t = make_batch()
        strategy = ParallelStrategy.uniform(LayerParallelism(sample=2))

        def prog(comm):
            net = DistNetwork(
                conv_net(), comm, strategy, seed=0,
                overlap_grad_reduce=True, collective_algorithm="direct",
            )
            calls: list[str] = []
            loss, grads = net.loss_and_grad(
                x, t, grad_hook=lambda name, g: calls.append(name)
            )
            return sorted(calls), sorted(grads)

        for calls, grads in run_spmd(2, prog):
            assert calls == grads  # every layer exactly once, none twice

    def test_poll_returns_each_layer_exactly_once(self):
        from repro.core.grad_reducer import BucketedGradReducer

        def prog(comm):
            red = BucketedGradReducer(bucket_bytes=256, algorithm="direct")
            for i in range(6):  # 128 B each: two layers per bucket
                red.add(f"L{i}", {"w": np.full(16, float(i + comm.rank))}, comm)
            polled: list[str] = []
            for _ in range(200):
                polled.extend(red.poll())
                if red.inflight == 0:
                    break
            final = red.drain()
            return polled, final

        for polled, final in run_spmd(2, prog):
            assert len(polled) == len(set(polled))  # no layer twice
            assert sorted(final) == [f"L{i}" for i in range(6)]
            for i in range(6):  # poll results stay in the final drain
                np.testing.assert_array_equal(
                    final[f"L{i}"]["w"], np.full(16, 2.0 * i + 1.0)
                )
