"""Cross-subsystem integration: optimizer -> functional execution, topology,
trainer bookkeeping, and end-to-end learning on the synthetic datasets."""

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.comm.collective_models import LinkParameters
from repro.comm.timemodel import ClusterTopology
from repro.core import DistNetwork, DistTrainer, LayerParallelism, ParallelStrategy
from repro.core.strategy import StrategyOptimizer
from repro.core.trainer import TrainStats
from repro.data import MeshTanglingDataset, SyntheticImageNet
from repro.nn import LocalNetwork, NetworkSpec, SGD
from repro.nn.meshnet import build_mesh_model
from repro.nn.resnet import build_resnet_tiny
from repro.perfmodel import LASSEN, MemoryModel


class TestClusterTopology:
    def topo(self):
        return ClusterTopology(
            gpus_per_node=4,
            intra_link=LinkParameters(alpha=1e-6, beta=1e-10),
            inter_link=LinkParameters(alpha=5e-6, beta=1e-9),
        )

    def test_node_mapping(self):
        t = self.topo()
        assert t.node_of(0) == 0 and t.node_of(3) == 0 and t.node_of(4) == 1

    def test_link_selection(self):
        t = self.topo()
        assert t.link_between(0, 3) is t.intra_link
        assert t.link_between(3, 4) is t.inter_link

    def test_collective_link(self):
        t = self.topo()
        assert t.collective_link([0, 1, 2, 3]) is t.intra_link
        assert t.collective_link([0, 4]) is t.inter_link
        assert t.nodes_used(range(9)) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterTopology(0, LinkParameters(1e-6, 1e-9), LinkParameters(1e-6, 1e-9))

    def test_machine_topology_roundtrip(self):
        t = LASSEN.topology()
        assert t.gpus_per_node == LASSEN.gpus_per_node
        assert not t.spans_nodes([0, 1, 2, 3])
        assert t.spans_nodes([0, 4])


class TestOptimizerToExecution:
    def test_optimized_strategy_executes_exactly(self):
        """The §V-C optimizer's chosen strategy, run through the §III
        functional executor, must still match single-device training —
        planning and execution agree on what a distribution means."""
        spec = NetworkSpec("opt-exec")
        spec.add("input", "input", channels=3, height=16, width=16)
        spec.add("c1", "conv", ["input"], filters=6, kernel=3, pad=1)
        spec.add("b1", "bn", ["c1"])
        spec.add("r1", "relu", ["b1"])
        spec.add("c2", "conv", ["r1"], filters=6, kernel=3, stride=2, pad=1)
        spec.add("r2", "relu", ["c2"])
        spec.add("predict", "conv", ["r2"], filters=1, kernel=1, bias=True)
        spec.add("loss", "bce", ["predict"])

        report = StrategyOptimizer(
            spec, LASSEN, total_ranks=4, n_global=2, check_memory=False
        ).optimize()
        strategy = report.strategy

        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 3, 16, 16))
        t = (rng.random((2, 1, 8, 8)) > 0.5).astype(float)

        ref = LocalNetwork(spec, seed=3)
        ref_loss, _ = ref.loss_and_grad(x, t)

        def prog(comm):
            net = DistNetwork(spec, comm, strategy, seed=3)
            loss, _ = net.loss_and_grad(x, t)
            return loss

        for loss in run_spmd(4, prog):
            assert loss == pytest.approx(ref_loss, rel=1e-9)

    def test_memory_model_consistent_with_strategy(self):
        """Whatever the optimizer picks must fit in modeled memory."""
        spec = build_mesh_model(
            resolution=512, convs_per_block=2,
            block_channels=(256, 384, 512, 512, 512, 512), input_channels=18,
        )
        report = StrategyOptimizer(spec, LASSEN, total_ranks=8, n_global=4).optimize()
        assert MemoryModel(spec, LASSEN).fits(4, report.strategy)


class TestTrainStats:
    def test_records(self):
        s = TrainStats()
        s.record(1.0)
        s.record(0.5)
        assert s.steps == 2 and s.last_loss == 0.5 and s.losses == [1.0, 0.5]


class TestEndToEndLearning:
    def test_mesh_tangling_learnable_distributed(self):
        """The synthetic mesh data's labels are a function of its channels;
        a small model must overfit a batch under spatial parallelism."""
        spec = build_mesh_model(
            resolution=32, convs_per_block=1, block_channels=(8, 12),
            input_channels=18, name="m",
        )
        shapes = spec.infer_shapes()
        stride = 32 // shapes["predict"][1]
        ds = MeshTanglingDataset(resolution=32, label_stride=stride, seed=5)
        x, t = ds.batch(2)

        def prog(comm):
            net = DistNetwork(spec, comm, LayerParallelism(height=2, width=1))
            trainer = DistTrainer(net, SGD(lr=2.0, momentum=0.9))
            losses = [trainer.step(x, t) for _ in range(10)]
            return losses

        for losses in run_spmd(2, prog):
            assert losses[-1] < losses[0] * 0.7

    def test_imagenet_synth_learnable(self):
        """Class-conditioned synthetic images are separable by a tiny
        ResNet trained sample-parallel."""
        ds = SyntheticImageNet(image_size=16, num_classes=4, seed=1)
        x, labels = ds.batch(8)
        spec = build_resnet_tiny(image_size=16, num_classes=4)

        def prog(comm):
            net = DistNetwork(spec, comm, LayerParallelism(sample=2))
            trainer = DistTrainer(net, SGD(lr=0.2, momentum=0.9))
            return [trainer.step(x, labels) for _ in range(8)]

        for losses in run_spmd(2, prog):
            assert losses[-1] < losses[0]

    def test_fc_layer_distributed(self):
        """'fc' layers execute sample-parallel with exact gradients."""
        spec = NetworkSpec("fc-net")
        spec.add("input", "input", channels=2, height=4, width=4)
        spec.add("c1", "conv", ["input"], filters=3, kernel=3, pad=1)
        spec.add("gap", "gap", ["c1"])
        spec.add("fc", "fc", ["gap"], units=5)
        spec.add("loss", "softmax_ce", ["fc"])
        rng = np.random.default_rng(2)
        x = rng.standard_normal((4, 2, 4, 4))
        labels = rng.integers(0, 5, size=4)
        ref = LocalNetwork(spec, seed=1)
        ref_loss, ref_grads = ref.loss_and_grad(x, labels)

        def prog(comm):
            net = DistNetwork(spec, comm, LayerParallelism(sample=2), seed=1)
            loss, grads = net.loss_and_grad(x, labels)
            return loss, grads["fc"]["w"]

        for loss, fc_w in run_spmd(2, prog):
            assert loss == pytest.approx(ref_loss, rel=1e-10)
            np.testing.assert_allclose(fc_w, ref_grads["fc"]["w"], rtol=1e-10)

    def test_dist_fc_rejects_spatial_input(self):
        spec = NetworkSpec("fc-bad")
        spec.add("input", "input", channels=2, height=8, width=8)
        spec.add("fc", "fc", ["input"], units=3)
        spec.add("loss", "softmax_ce", ["fc"])

        def prog(comm):
            # Spatially split input feeding FC without a gap/shuffle: the
            # executor shuffles automatically, so this must *work*.
            net = DistNetwork(spec, comm, ParallelStrategy({
                "input": LayerParallelism(height=2, width=1),
                "fc": LayerParallelism(sample=2),
                "loss": LayerParallelism(sample=2),
            }))
            rng = np.random.default_rng(0)
            x = rng.standard_normal((2, 2, 8, 8))
            return net.loss_and_grad(x, np.array([0, 1]))[0]

        losses = run_spmd(2, prog)
        assert np.isfinite(losses).all()
        assert losses[0] == pytest.approx(losses[1])
