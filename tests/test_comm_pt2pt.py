"""Point-to-point semantics of the SPMD communicator."""

import numpy as np
import pytest

from repro.comm import run_spmd


class TestSendRecv:
    def test_two_rank_exchange(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send({"a": 7}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = run_spmd(2, prog)
        assert results[1] == {"a": 7}

    def test_numpy_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(1000, dtype=np.float64), dest=1)
                return None
            return comm.recv(source=0)

        results = run_spmd(2, prog)
        np.testing.assert_array_equal(results[1], np.arange(1000, dtype=np.float64))

    def test_send_transfers_contiguous_payload_zero_copy(self):
        """Contiguous arrays are handed over zero-copy as read-only views.

        The contract is MPI's: the sender must not mutate the buffer after
        the send.  The receiver sees the sender's memory (no copy) but
        cannot write through it.
        """

        def prog(comm):
            if comm.rank == 0:
                data = np.ones(8)
                comm.send(data, dest=1)
                comm.barrier()
                return data
            got = comm.recv(source=0)
            comm.barrier()
            return got

        results = run_spmd(2, prog)
        sent, got = results
        np.testing.assert_array_equal(got, np.ones(8))
        assert not got.flags.writeable
        assert np.shares_memory(sent, got)

    def test_send_copies_payload_when_zero_copy_disabled(self):
        """set_zero_copy(False) restores the defensive copy-on-send path."""
        from repro.comm import set_zero_copy

        def prog(comm):
            if comm.rank == 0:
                data = np.ones(8)
                comm.send(data, dest=1)
                data[:] = -1.0
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0)

        prev = set_zero_copy(False)
        try:
            results = run_spmd(2, prog)
        finally:
            set_zero_copy(prev)
        np.testing.assert_array_equal(results[1], np.ones(8))

    def test_send_copies_noncontiguous_payload(self):
        """Non-contiguous views are still copied at the boundary."""

        def prog(comm):
            if comm.rank == 0:
                data = np.arange(16, dtype=np.float64)[::2]
                comm.send(data, dest=1)
                data[:] = -1.0
                comm.barrier()
                return None
            comm.barrier()
            return comm.recv(source=0)

        results = run_spmd(2, prog)
        np.testing.assert_array_equal(results[1], np.arange(0, 16, 2, dtype=np.float64))

    def test_tag_matching_out_of_order(self):
        """A recv on tag 2 must not consume the tag-1 message."""

        def prog(comm):
            if comm.rank == 0:
                comm.send("first", dest=1, tag=1)
                comm.send("second", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        results = run_spmd(2, prog)
        assert results[1] == ("first", "second")

    def test_fifo_per_source_tag(self):
        def prog(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(5)]

        results = run_spmd(2, prog)
        assert results[1] == [0, 1, 2, 3, 4]

    def test_self_send(self):
        def prog(comm):
            comm.send("loop", dest=comm.rank, tag=3)
            return comm.recv(source=comm.rank, tag=3)

        assert run_spmd(1, prog) == ["loop"]

    def test_sendrecv_ring(self):
        """Every rank passes its rank value around a ring."""

        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        results = run_spmd(4, prog)
        assert results == [3, 0, 1, 2]

    def test_sendrecv_bidirectional_no_deadlock(self):
        """Eager sends mean a symmetric exchange cannot deadlock."""

        def prog(comm):
            partner = 1 - comm.rank
            got = comm.sendrecv(np.full(4, comm.rank), dest=partner, source=partner)
            return float(got[0])

        assert run_spmd(2, prog) == [1.0, 0.0]


class TestErrors:
    def test_exception_propagates(self):
        def prog(comm):
            if comm.rank == 1:
                raise ValueError("boom on rank 1")
            comm.recv(source=1)  # would block forever without abort

        with pytest.raises(ValueError, match="boom on rank 1"):
            run_spmd(2, prog, timeout=10)

    def test_recv_from_out_of_range_rank(self):
        def prog(comm):
            comm.recv(source=5)

        with pytest.raises(ValueError, match="out of range"):
            run_spmd(2, prog, timeout=10)

    def test_single_rank_runs_inline(self):
        def prog(comm):
            assert comm.size == 1 and comm.rank == 0
            return "done"

        assert run_spmd(1, prog) == ["done"]


class TestStats:
    def test_bytes_accounting(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.zeros(100, dtype=np.float32), dest=1)
            else:
                comm.recv(source=0)
            return (comm.stats.bytes_sent, comm.stats.bytes_received)

        results = run_spmd(2, prog)
        assert results[0] == (400, 0)
        assert results[1] == (0, 400)
