"""Checkpoint/resume: atomicity, rank agreement, and the headline bitwise
guarantee — a killed-and-resumed training run produces exactly the same
parameters and losses as an uninterrupted one, on both world backends.
"""

import os

import numpy as np
import pytest

from repro.comm import CommAborted, run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.core import checkpoint as ckpt
from repro.nn import NetworkSpec, SGD
from tests.conftest import reduce_for_process

NSTEPS = 6
EVERY = 2
KILL_AT = 3  # between cadences: the newest checkpoint is step 2


def small_spec() -> NetworkSpec:
    spec = NetworkSpec("ckpt")
    spec.add("input", "input", channels=1, height=8, width=8)
    spec.add("c1", "conv", ["input"], filters=4, kernel=3, pad=1, bias=True)
    spec.add("b1", "bn", ["c1"])
    spec.add("r1", "relu", ["b1"])
    spec.add("gap", "gap", ["r1"])
    spec.add("fc", "fc", ["gap"], units=3)
    spec.add("loss", "softmax_ce", ["fc"])
    return spec


def train(comm, ckdir, kill_at=None, resume=False, nsteps=NSTEPS):
    """Seeded training loop drawing batches from the trainer's rng, so a
    bitwise-restored rng replays the identical data order."""
    net = DistNetwork(
        small_spec(), comm, LayerParallelism(sample=comm.size), seed=0
    )
    trainer = DistTrainer(
        net,
        SGD(lr=0.05, momentum=0.9, weight_decay=1e-4),
        checkpoint_dir=ckdir,
        checkpoint_every=EVERY,
        rng=np.random.default_rng(42),
    )
    start = 0
    if resume:
        start = trainer.resume() or 0
    for _ in range(start, nsteps):
        x = trainer.rng.standard_normal((4, 1, 8, 8))
        t = trainer.rng.integers(0, 3, size=4)
        trainer.step(x, t)
        if kill_at is not None and trainer.step_index == kill_at:
            raise RuntimeError("simulated rank death")
    params = {
        layer: {p: a.copy() for p, a in v.items()}
        for layer, v in net.params.items()
    }
    bn = net.state_dict()["bn"]
    return params, bn, trainer.stats.losses, trainer.step_index


class TestPrimitives:
    def test_roundtrip_is_bitwise_and_preserves_dtypes(self, tmp_path):
        state = {
            "f64": np.random.default_rng(0).standard_normal(17),
            "f32": np.arange(5, dtype=np.float32) / 3,
            "i8": np.array([-1, 2], dtype=np.int8),
            "nested": [{"deep": (np.full((2, 3), np.pi), "label", 7)}],
            "scalar": 1.5,
            "none": None,
        }
        ckpt.save_state(str(tmp_path), 3, 0, state)
        out = ckpt.load_state(str(tmp_path), 3, 0)
        assert out["f64"].dtype == np.float64 and out["i8"].dtype == np.int8
        np.testing.assert_array_equal(out["f64"], state["f64"])
        np.testing.assert_array_equal(out["f32"], state["f32"])
        np.testing.assert_array_equal(
            out["nested"][0]["deep"][0], state["nested"][0]["deep"][0]
        )
        assert out["nested"][0]["deep"][1:] == ("label", 7)
        assert out["scalar"] == 1.5 and out["none"] is None

    def test_save_is_atomic_no_temp_left_under_final_name(self, tmp_path):
        path = ckpt.save_state(str(tmp_path), 1, 0, {"x": np.ones(4)})
        assert os.path.basename(path) == "step00000001.rank0.npz"
        # Nothing but complete final files in the directory.
        assert all(
            not f.startswith(".tmp-") for f in os.listdir(tmp_path)
        )

    def test_interrupted_save_leaves_prior_checkpoint_intact(self, tmp_path):
        """os.replace semantics: the final name always points at a complete
        file, so a crash mid-save costs the new step, not the old one."""
        ckpt.save_state(str(tmp_path), 2, 0, {"x": np.zeros(4)})
        # Simulate the torn write an interrupted save leaves behind.
        stale = tmp_path / ".tmp-step00000004.rank0-abc.npz"
        stale.write_bytes(b"torn")
        assert ckpt.local_steps(str(tmp_path), 0) == [2]
        out = ckpt.load_state(str(tmp_path), 2, 0)
        np.testing.assert_array_equal(out["x"], np.zeros(4))
        # The next prune sweeps stale temp files.
        ckpt.prune(str(tmp_path), 0, keep=5)
        assert not stale.exists()

    def test_prune_keeps_newest(self, tmp_path):
        for step in (1, 2, 3, 4):
            ckpt.save_state(str(tmp_path), step, 0, {"s": np.array([step])})
        removed = ckpt.prune(str(tmp_path), 0, keep=2)
        assert removed == [1, 2]
        assert ckpt.local_steps(str(tmp_path), 0) == [3, 4]

    def test_prune_keep_zero_removes_all(self, tmp_path):
        """keep=0 means "keep none" — historically the ``steps[:-0]``
        empty-slice trap made it silently keep everything."""
        for step in (1, 2, 3):
            ckpt.save_state(str(tmp_path), step, 0, {"s": np.array([step])})
        removed = ckpt.prune(str(tmp_path), 0, keep=0)
        assert removed == [1, 2, 3]
        assert ckpt.local_steps(str(tmp_path), 0) == []

    def test_prune_negative_keep_rejected(self, tmp_path):
        """Negative keep used to delete the *newest* checkpoints
        (``steps[:-(-2)]`` drops from the front of the sorted list)."""
        for step in (1, 2, 3):
            ckpt.save_state(str(tmp_path), step, 0, {"s": np.array([step])})
        with pytest.raises(ValueError, match="keep"):
            ckpt.prune(str(tmp_path), 0, keep=-2)
        # Nothing was touched.
        assert ckpt.local_steps(str(tmp_path), 0) == [1, 2, 3]

    def test_latest_common_step_intersects_ranks(self, tmp_path):
        """A crash mid-cadence leaves the newest step on a subset of ranks;
        every rank must agree on the newest *common* step."""
        d = str(tmp_path)
        for rank in (0, 1):
            ckpt.save_state(d, 2, rank, {"r": np.array([rank])})
        ckpt.save_state(d, 4, 0, {"r": np.array([0])})  # rank 1 died first

        def prog(comm):
            return ckpt.latest_common_step(d, comm)

        assert run_spmd(2, prog) == [2, 2]

    def test_latest_common_step_empty(self, tmp_path):
        d = str(tmp_path)

        def prog(comm):
            return ckpt.latest_common_step(d, comm)

        assert run_spmd(2, prog) == [None, None]


class TestBitwiseResume:
    @pytest.mark.parametrize("nranks", [1, 2])
    def test_kill_then_resume_matches_uninterrupted(
        self, backend, nranks, tmp_path
    ):
        reduce_for_process(
            backend, heavy=nranks == 1, reason="2-rank run covers the backend"
        )
        ref_dir, kill_dir = str(tmp_path / "ref"), str(tmp_path / "kill")

        ref = run_spmd(nranks, train, ref_dir, backend=backend)
        with pytest.raises(RuntimeError, match="simulated rank death"):
            run_spmd(nranks, train, kill_dir, kill_at=KILL_AT, backend=backend)
        out = run_spmd(nranks, train, kill_dir, resume=True, backend=backend)

        for (p_ref, bn_ref, losses_ref, step_ref), (
            p_out, bn_out, losses_out, step_out,
        ) in zip(ref, out):
            assert step_ref == step_out == NSTEPS
            for layer in p_ref:
                for pname in p_ref[layer]:
                    np.testing.assert_array_equal(
                        p_ref[layer][pname], p_out[layer][pname]
                    )
            for layer in bn_ref:
                for sname in bn_ref[layer]:
                    np.testing.assert_array_equal(
                        bn_ref[layer][sname], bn_out[layer][sname]
                    )
            # The resumed run replays steps 3..6; its recorded losses must
            # equal the uninterrupted run's tail bitwise.
            assert losses_out == losses_ref[KILL_AT - 1:]

    def test_hard_crash_then_resume_on_process_backend(self, tmp_path):
        """The rank dies by os._exit (injected crash) — no Python unwind,
        no atexit — and the on-disk checkpoints still support an exact
        resume."""
        ck = str(tmp_path / "ck")
        ref_dir = str(tmp_path / "ref")

        ref = run_spmd(2, train, ref_dir)

        def killed(comm, ckdir):
            try:
                return train(comm, ckdir, kill_at=None)
            except CommAborted:
                return None

        out = run_spmd(
            2,
            killed,
            ck,
            backend="process",
            # The gradient allreduce schedules send 5 "#alg" messages per
            # rank per step; send 12 is mid-step-3, after the step-2
            # checkpoint cadence was written.
            faults="crash@rank1:tag=#alg:after=12",
            allow_failures=True,
            detect_interval=0.2,
            timeout=30.0,
        )
        assert any(isinstance(o, (CommAborted, type(None))) for o in out)
        steps = ckpt.local_steps(ck, 0)
        assert steps and max(steps) >= EVERY

        resumed = run_spmd(2, train, ck, resume=True, backend="process")
        for (p_ref, bn_ref, losses_ref, _), (p_out, bn_out, _, _) in zip(
            ref, resumed
        ):
            for layer in p_ref:
                for pname in p_ref[layer]:
                    np.testing.assert_array_equal(
                        p_ref[layer][pname], p_out[layer][pname]
                    )

    def test_resume_without_checkpoint_is_noop(self, tmp_path):
        def prog(comm):
            net = DistNetwork(
                small_spec(), comm, LayerParallelism(sample=comm.size), seed=0
            )
            trainer = DistTrainer(
                net, checkpoint_dir=str(tmp_path / "none"), rng=None
            )
            return trainer.resume()

        assert run_spmd(2, prog) == [None, None]

    def test_resume_demands_rng_when_checkpoint_has_one(self, tmp_path):
        d = str(tmp_path)

        def save(comm):
            net = DistNetwork(
                small_spec(), comm, LayerParallelism(sample=comm.size), seed=0
            )
            tr = DistTrainer(
                net, checkpoint_dir=d, rng=np.random.default_rng(1)
            )
            tr.save_checkpoint()

        def load(comm):
            net = DistNetwork(
                small_spec(), comm, LayerParallelism(sample=comm.size), seed=0
            )
            tr = DistTrainer(net, checkpoint_dir=d, rng=None)
            try:
                tr.resume()
            except RuntimeError as exc:
                return str(exc)
            return None

        run_spmd(1, save)
        (msg,) = run_spmd(1, load)
        assert "no rng" in msg
