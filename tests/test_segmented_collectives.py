"""Segmented collective schedules: parity, determinism, wire accounting.

The ``segment_bytes`` knob splits a scheduled allreduce's payload into
near-equal segments and expands the compiled schedule step-major, so the
runner pipelines them.  This suite holds that transform to its contract on
every SPMD backend:

* **parity** — op x algorithm x segment size (uneven last segment,
  segment > payload, near-element-sized degenerate) is allclose to the
  bitwise-reference ``"direct"`` fold, exactly deterministic across
  repeated runs, and bitwise identical across ranks;
* **degeneration** — ``segment_bytes=None`` and any segment size yielding
  ``nseg <= 1`` run the *identical* unsegmented schedule (bitwise), and
  record zero pipeline segments;
* **wire accounting** — measured wire counters (and the process backend's
  shared-memory transport counter) equal
  ``segmented_allreduce_wire_bytes`` to the byte: segmentation re-chunks
  the schedule, it never changes the volume;
* **env override** — ``REPRO_SEGMENT_BYTES`` parses loudly and overrides
  the call site, and ``collective_segments`` proves the pipeline engaged;
* **allgather schedules** — the ring / recursive-doubling allgathers are
  first-class compiled schedules: bitwise identical to ``"direct"`` (no
  reduction, so no rounding freedom at all).
"""

import numpy as np
import pytest

from conftest import reduce_for_process
from repro.comm import run_spmd
from repro.comm.communicator import SEGMENT_BYTES_ENV, _parse_segment_bytes
from repro.comm.collective_models import (
    segment_sizes,
    segmented_allreduce_wire_bytes,
    select_segment_bytes,
)

ALGS = ("ring", "rabenseifner", "recursive_doubling")

#: (payload elements, segment_bytes) cases: uneven last segment, segment
#: larger than the payload (degenerates to the whole schedule), and a
#: near-element-sized segment (maximum pipeline depth).
SEG_CASES = (
    (1031, 3000),        # 8248 B / 3000 B -> 3 uneven segments
    (257, 10**9),        # segment > payload -> nseg == 1, bitwise None
    (37, 16),            # ~2 elements per segment: degenerate pipelining
)


def _seg_prog(comm, alg, n, seg, op):
    rng = np.random.default_rng(1000 + comm.rank)
    x = rng.standard_normal(n)
    if op == "prod":
        x = 1.0 + 0.01 * x
    direct = comm.allreduce(x, op=op, algorithm="direct")
    comm.stats.reset()
    first = comm.allreduce(x, op=op, algorithm=alg, segment_bytes=seg)
    nseg = comm.stats.total_segments("allreduce")
    again = comm.allreduce(x, op=op, algorithm=alg, segment_bytes=seg)
    return direct, first, again, nseg


class TestSegmentedParity:
    @pytest.mark.parametrize("alg", ALGS)
    @pytest.mark.parametrize("op", ("sum", "max"))
    @pytest.mark.parametrize("n,seg", SEG_CASES)
    def test_parity_determinism_and_segment_count(
        self, backend, alg, op, n, seg
    ):
        reduce_for_process(
            backend,
            heavy=not (alg == "ring" and op == "sum"),
            reason="forked backends run the ring/sum column",
        )
        p = 4
        results = run_spmd(
            p, _seg_prog, alg, n, seg, op, backend=backend, timeout=120
        )
        expected_nseg = len(segment_sizes(n * 8, seg))
        ref = results[0]
        for direct, first, again, nseg in results:
            np.testing.assert_allclose(first, direct, rtol=1e-10, atol=1e-12)
            # Deterministic: the same call reduces in the same order.
            np.testing.assert_array_equal(first, again)
            # All ranks hold the bitwise-identical result.
            np.testing.assert_array_equal(first, ref[1])
            # The pipeline actually engaged (or degenerated, if nseg<=1).
            assert nseg == (expected_nseg if expected_nseg > 1 else 0)

    def test_oversized_segment_is_bitwise_none(self, backend):
        """``nseg <= 1`` must run the identical unsegmented schedule."""

        def prog(comm):
            rng = np.random.default_rng(50 + comm.rank)
            x = rng.standard_normal(257)
            whole = comm.allreduce(x, algorithm="ring", segment_bytes=None)
            huge = comm.allreduce(x, algorithm="ring", segment_bytes=10**9)
            return whole, huge, comm.stats.total_segments("allreduce")

        for whole, huge, nseg in run_spmd(4, prog, backend=backend, timeout=60):
            np.testing.assert_array_equal(whole, huge)
            assert nseg == 0  # neither call engaged the pipeline


class TestWireAccounting:
    @pytest.mark.parametrize("alg", ALGS)
    def test_wire_and_transport_match_model_exactly(self, alg):
        """Measured wire bytes (and the process backend's shared-memory
        transport counter) equal the segmented model to the byte for
        payloads divisible by ``nseg * p``."""
        p, nbytes = 4, 262_144
        seg = nbytes // 4

        def prog(comm, segment):
            x = np.full(nbytes // 8, 1.0 + comm.rank)
            comm.allreduce(x, algorithm=alg, segment_bytes=segment)  # warm
            comm.stats.reset()
            transport = comm._world.transport
            before = transport["shm_bytes"]
            comm.allreduce(x, algorithm=alg, segment_bytes=segment)
            return (
                comm.stats.total_wire_sent("allreduce"),
                transport["shm_bytes"] - before,
            )

        for segment in (None, seg):
            modeled = segmented_allreduce_wire_bytes(p, nbytes, segment, alg)
            for wire, shm in run_spmd(
                p, prog, segment, backend="process", timeout=120
            ):
                assert wire == modeled
                assert shm == modeled


class TestEnvOverride:
    def test_parse_accepts_documented_spellings(self):
        assert _parse_segment_bytes("auto") == "auto"
        assert _parse_segment_bytes("AUTO") == "auto"
        for off in ("none", "off", "0", " None "):
            assert _parse_segment_bytes(off) is None
        assert _parse_segment_bytes("4096") == 4096

    def test_parse_rejects_typos_loudly(self):
        with pytest.raises(ValueError, match="not a segment size"):
            _parse_segment_bytes("4k")
        with pytest.raises(ValueError):
            _parse_segment_bytes("-1")

    def test_env_overrides_call_site(self, monkeypatch):
        """The env forces its segment size over the explicit kwarg, and
        the segments counter proves the pipeline engaged."""
        n = 65_536 // 8
        monkeypatch.setenv(SEGMENT_BYTES_ENV, "4096")

        def prog(comm):
            x = np.full(n, 1.0 + comm.rank)
            comm.stats.reset()
            y = comm.allreduce(x, algorithm="ring", segment_bytes=None)
            return y, comm.stats.total_segments("allreduce")

        expected = len(segment_sizes(n * 8, 4096))
        assert expected == 16
        for y, nseg in run_spmd(4, prog, timeout=60):
            np.testing.assert_allclose(y, np.full(n, 1.0 + 2.0 + 3.0 + 4.0))
            assert nseg == expected

    def test_env_auto_applies_model_selection(self, monkeypatch):
        n = 1_048_576 // 8
        monkeypatch.setenv(SEGMENT_BYTES_ENV, "auto")
        sel = select_segment_bytes(4, n * 8, algorithm="ring")
        assert sel is not None  # 1 MiB on 4 ranks: the model does segment

        def prog(comm):
            x = np.full(n, float(comm.rank))
            comm.stats.reset()
            comm.allreduce(x, algorithm="ring")
            return comm.stats.total_segments("allreduce")

        expected = len(segment_sizes(n * 8, sel))
        for nseg in run_spmd(4, prog, timeout=60):
            assert nseg == expected

    def test_env_off_disables_call_site_segmentation(self, monkeypatch):
        monkeypatch.setenv(SEGMENT_BYTES_ENV, "off")

        def prog(comm):
            x = np.full(4096, float(comm.rank))
            comm.stats.reset()
            comm.allreduce(x, algorithm="ring", segment_bytes=8192)
            return comm.stats.total_segments("allreduce")

        assert run_spmd(4, prog, timeout=60) == [0, 0, 0, 0]


class TestAllgatherSchedules:
    @pytest.mark.parametrize("alg", ("ring", "recursive_doubling"))
    def test_bitwise_parity_with_direct(self, backend, alg):
        reduce_for_process(
            backend,
            heavy=alg != "ring",
            reason="forked backends run the ring column",
        )

        def prog(comm):
            rng = np.random.default_rng(77 + comm.rank)
            x = rng.standard_normal(131)  # uneven: n not divisible by p
            direct = comm.allgather(x, algorithm="direct")
            sched = comm.allgather(x, algorithm=alg)
            return direct, sched

        for direct, sched in run_spmd(4, prog, backend=backend, timeout=60):
            assert len(sched) == 4
            for d, s in zip(direct, sched):
                np.testing.assert_array_equal(np.asarray(s), np.asarray(d))
