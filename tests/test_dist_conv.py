"""Layer-level exactness of distributed convolution (paper §III-A).

"Our algorithms exactly replicate convolution as if it were performed on a
single GPU (up to floating point accumulation issues)."
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import run_spmd
from repro.core.dist_conv import DistConv2d
from repro.nn import functional as F
from repro.tensor import DistTensor, ProcessGrid
from repro.core.parallelism import activation_dist

RTOL = 1e-11


def run_dist_conv(nranks, grid_shape, x, w, stride, pad, bias=None):
    """Run fwd+bwd distributed; return per-rank (y, dx, dw, db) globals."""

    def prog(comm):
        grid = ProcessGrid(comm, grid_shape)
        xd = DistTensor.from_global(grid, activation_dist(grid_shape, x.shape), x)
        conv = DistConv2d(grid, w, stride=stride, pad=pad, bias=bias)
        y = conv.forward(xd)
        rng = np.random.default_rng(99)
        dy_global = rng.standard_normal(y.global_shape)
        dy = DistTensor.from_global(grid, y.dist, dy_global)
        dx, dw_partial, db_partial = conv.backward(dy)
        # Complete Eq. 2 with the allreduce over the split axes.
        axes = [d for d in range(4) if y.dist.is_split(d)]
        dw = grid.axes_comm(axes).allreduce(dw_partial) if axes else dw_partial
        db = None
        if db_partial is not None:
            db = grid.axes_comm(axes).allreduce(db_partial) if axes else db_partial
        return y.to_global(), dx.to_global(), dw, db, dy_global

    return run_spmd(nranks, prog)


GEOMETRIES = [
    # (grid_shape, N, C, H, W, F, K, S, P) — sample / spatial / hybrid
    ((4, 1, 1, 1), 4, 3, 8, 8, 5, 3, 1, 1),     # pure sample
    ((1, 1, 2, 2), 2, 3, 8, 8, 5, 3, 1, 1),     # 2x2 spatial
    ((1, 1, 4, 1), 1, 3, 16, 8, 5, 3, 1, 1),    # 4x1 spatial
    ((2, 1, 2, 1), 2, 3, 8, 8, 4, 3, 1, 1),     # hybrid 2 samples x 2-way
    ((2, 1, 2, 2), 2, 2, 8, 8, 4, 3, 1, 1),     # hybrid 2 x 2x2 (8 ranks)
    ((1, 1, 2, 2), 1, 3, 9, 11, 4, 3, 1, 1),    # uneven partitions
    ((1, 1, 2, 2), 1, 2, 12, 12, 4, 5, 2, 2),   # K=5 S=2 (mesh conv1_1 class)
    ((1, 1, 2, 2), 1, 2, 12, 12, 4, 7, 2, 3),   # K=7 S=2 (resnet conv1 class)
    ((1, 1, 2, 2), 2, 3, 8, 8, 5, 1, 1, 0),     # 1x1: no halo at all
    ((1, 1, 2, 2), 1, 2, 11, 13, 3, 3, 2, 1),   # odd sizes + stride
    ((1, 1, 4, 4), 1, 1, 16, 16, 2, 3, 1, 1),   # 16-way spatial
]


class TestDistConvExactness:
    @pytest.mark.parametrize("grid_shape,n,c,h,w_,f,k,s,p", GEOMETRIES)
    def test_forward_backward_match_local(self, grid_shape, n, c, h, w_, f, k, s, p):
        nranks = int(np.prod(grid_shape))
        rng = np.random.default_rng(1234)
        x = rng.standard_normal((n, c, h, w_))
        w = rng.standard_normal((f, c, k, k))

        results = run_dist_conv(nranks, grid_shape, x, w, s, p)
        y_ref = F.conv2d_forward(x, w, stride=s, pad=p)
        rng2 = np.random.default_rng(99)
        dy = rng2.standard_normal(y_ref.shape)
        dx_ref = F.conv2d_backward_data(dy, w, stride=s, pad=p, x_spatial=(h, w_))
        dw_ref = F.conv2d_backward_filter(x, dy, kernel=k, stride=s, pad=p)

        for y_got, dx_got, dw_got, _, dy_used in results:
            np.testing.assert_array_equal(dy_used, dy)
            np.testing.assert_allclose(y_got, y_ref, rtol=RTOL, atol=1e-12)
            np.testing.assert_allclose(dx_got, dx_ref, rtol=RTOL, atol=1e-12)
            np.testing.assert_allclose(dw_got, dw_ref, rtol=1e-10, atol=1e-11)

    def test_bias_gradients(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((2, 2, 8, 8))
        w = rng.standard_normal((3, 2, 3, 3))
        b = rng.standard_normal(3)
        results = run_dist_conv(4, (1, 1, 2, 2), x, w, 1, 1, bias=b)
        y_ref = F.conv2d_forward(x, w, stride=1, pad=1, bias=b)
        rng2 = np.random.default_rng(99)
        dy = rng2.standard_normal(y_ref.shape)
        for y_got, _, _, db_got, _ in results:
            np.testing.assert_allclose(y_got, y_ref, rtol=RTOL)
            np.testing.assert_allclose(db_got, dy.sum(axis=(0, 2, 3)), rtol=1e-10)

    def test_sample_parallel_needs_no_spatial_traffic(self):
        """Pure sample parallelism: the gather degenerates to the local
        block — zero point-to-point bytes moved (the paper's 'cheapest'
        decomposition)."""
        rng = np.random.default_rng(6)
        x = rng.standard_normal((4, 2, 6, 6))
        w = rng.standard_normal((3, 2, 3, 3))

        def prog(comm):
            grid = ProcessGrid(comm, (4, 1, 1, 1))
            xd = DistTensor.from_global(grid, activation_dist(grid.shape, x.shape), x)
            conv = DistConv2d(grid, w, stride=1, pad=1)
            comm.stats.reset()
            conv.forward(xd)
            # alltoall counts self-addressed payloads as zero off-rank bytes.
            return comm.stats.collective_bytes.get("region_data", 0)

        assert run_spmd(4, prog) == [0, 0, 0, 0]

    def test_spatial_halo_volume_matches_model(self):
        """Spatial parallelism moves exactly the O-row halos the paper's
        cost model charges: 2 * SR(O * N * C * W_local) for a 1D height
        decomposition with interior ranks sending two halos."""
        n, c, h, w_, f, k = 1, 2, 16, 8, 3, 3
        rng = np.random.default_rng(7)
        x = rng.standard_normal((n, c, h, w_))
        w = rng.standard_normal((f, c, k, k))

        def prog(comm):
            grid = ProcessGrid(comm, (1, 1, 4, 1))
            xd = DistTensor.from_global(grid, activation_dist(grid.shape, x.shape), x)
            conv = DistConv2d(grid, w, stride=1, pad=1)
            comm.stats.reset()
            conv.forward(xd)
            return comm.stats.collective_bytes.get("region_data", 0)

        byte_counts = run_spmd(4, prog)
        halo_row_bytes = 1 * n * c * w_ * 8  # O=1 row of float64
        # Edge ranks serve one neighbor, interior ranks two.
        assert byte_counts == [
            halo_row_bytes, 2 * halo_row_bytes, 2 * halo_row_bytes, halo_row_bytes,
        ]

    def test_replicated_spatial_dims(self):
        """1x1 'FC-as-conv' on a (N, C, 1, 1) tensor with spatial axes
        replicated (the classifier head case)."""
        rng = np.random.default_rng(8)
        x = rng.standard_normal((4, 6, 1, 1))
        w = rng.standard_normal((3, 6, 1, 1))

        def prog(comm):
            grid = ProcessGrid(comm, (2, 1, 2, 1))
            dist = activation_dist(grid.shape, x.shape)
            assert not dist.is_split(2)  # H=1 < 2 parts -> replicated
            xd = DistTensor.from_global(grid, dist, x)
            conv = DistConv2d(grid, w)
            y = conv.forward(xd)
            dy = DistTensor.from_global(
                grid, y.dist, np.ones(y.global_shape)
            )
            dx, dw_p, _ = conv.backward(dy)
            axes = [d for d in range(4) if y.dist.is_split(d)]
            dw = grid.axes_comm(axes).allreduce(dw_p) if axes else dw_p
            return y.to_global(), dx.to_global(), dw

        y_ref = F.conv2d_forward(x, w)
        dy = np.ones(y_ref.shape)
        dx_ref = F.conv2d_backward_data(dy, w, x_spatial=(1, 1))
        dw_ref = F.conv2d_backward_filter(x, dy, kernel=1)
        for y_got, dx_got, dw_got in run_spmd(4, prog):
            np.testing.assert_allclose(y_got, y_ref, rtol=RTOL)
            np.testing.assert_allclose(dx_got, dx_ref, rtol=RTOL)
            np.testing.assert_allclose(dw_got, dw_ref, rtol=1e-10)

    def test_channel_axis_rejected(self):
        def prog(comm):
            grid = ProcessGrid(comm, (1, 2, 1, 1))
            DistConv2d(grid, np.zeros((2, 2, 3, 3)))

        with pytest.raises(ValueError, match="channel_filter"):
            run_spmd(2, prog, timeout=10)

    def test_backward_before_forward(self):
        def prog(comm):
            grid = ProcessGrid(comm, (1, 1, 1, 1))
            conv = DistConv2d(grid, np.zeros((1, 1, 3, 3)))
            conv.backward(
                DistTensor.from_global(
                    grid, activation_dist(grid.shape, (1, 1, 4, 4)), np.zeros((1, 1, 4, 4))
                )
            )

        with pytest.raises(RuntimeError, match="before forward"):
            run_spmd(1, prog, timeout=10)


@settings(max_examples=12, deadline=None)
@given(
    h=st.integers(6, 14),
    w=st.integers(6, 14),
    k=st.sampled_from([1, 3, 5]),
    s=st.integers(1, 2),
    seed=st.integers(0, 50),
)
def test_dist_conv_property(h, w, k, s, seed):
    """Exactness over random geometries on a 2x2 spatial grid."""
    p = k // 2
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((1, 2, h, w))
    wt = rng.standard_normal((3, 2, k, k))
    results = run_dist_conv(4, (1, 1, 2, 2), x, wt, s, p)
    y_ref = F.conv2d_forward(x, wt, stride=s, pad=p)
    for y_got, *_ in results:
        np.testing.assert_allclose(y_got, y_ref, rtol=1e-10, atol=1e-12)
