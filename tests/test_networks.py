"""Network specs, shape inference, and single-device execution."""

import numpy as np
import pytest

from repro.nn import LocalNetwork, NetworkSpec, SGD
from repro.nn.meshnet import build_mesh_model, mesh_model_1k, mesh_model_2k, mesh_model_tiny
from repro.nn.resnet import build_resnet50, build_resnet_tiny


class TestNetworkSpec:
    def test_duplicate_name(self):
        net = NetworkSpec("t")
        net.add("input", "input", channels=1, height=4, width=4)
        with pytest.raises(ValueError, match="duplicate"):
            net.add("input", "relu", ["input"])

    def test_unknown_parent(self):
        net = NetworkSpec("t")
        with pytest.raises(ValueError, match="unknown parent"):
            net.add("a", "relu", ["missing"])

    def test_unknown_kind(self):
        net = NetworkSpec("t")
        with pytest.raises(ValueError, match="unknown layer kind"):
            net.add("a", "frobnicate")

    def test_non_input_needs_parent(self):
        net = NetworkSpec("t")
        with pytest.raises(ValueError, match="needs a parent"):
            net.add("a", "relu")

    def test_children_and_outputs(self):
        net = NetworkSpec("t")
        net.add("input", "input", channels=1, height=4, width=4)
        net.add("c1", "conv", ["input"], filters=2, kernel=3, pad=1)
        net.add("r1", "relu", ["c1"])
        net.add("add", "add", ["r1", "c1"])
        assert net.children_of("c1") == ["r1", "add"]
        assert [out.name for out in net.outputs()] == ["add"]

    def test_add_shape_mismatch(self):
        net = NetworkSpec("t")
        net.add("input", "input", channels=1, height=8, width=8)
        net.add("c1", "conv", ["input"], filters=2, kernel=3, pad=1)
        net.add("c2", "conv", ["input"], filters=2, kernel=3, pad=1, stride=2)
        net.add("bad", "add", ["c1", "c2"])
        with pytest.raises(ValueError, match="parent shapes differ"):
            net.infer_shapes()


class TestResNet50Spec:
    def test_paper_benchmark_layer_shapes(self):
        """The two layers the paper microbenchmarks (Fig. 2) must have
        exactly the published specifications."""
        net = build_resnet50()
        shapes = net.infer_shapes()

        conv1 = net["conv1"]
        assert shapes["input"] == (3, 224, 224)
        assert conv1.params == {"filters": 64, "kernel": 7, "stride": 2, "pad": 3}
        assert shapes["conv1"] == (64, 112, 112)

        layer = net["res3b_branch2a"]
        parent_shape = shapes[layer.parents[0]]
        assert parent_shape == (512, 28, 28)  # C=512, H=W=28
        assert layer.params == {"filters": 128, "kernel": 1, "stride": 1, "pad": 0}

    def test_parameter_count(self):
        """Standard ResNet-50 has ~25.56M parameters."""
        net = build_resnet50()
        total = net.total_params()
        assert 25.4e6 < total < 25.7e6

    def test_stage_resolutions(self):
        net = build_resnet50()
        shapes = net.infer_shapes()
        assert shapes["res2c_relu"] == (256, 56, 56)
        assert shapes["res3d_relu"] == (512, 28, 28)
        assert shapes["res4f_relu"] == (1024, 14, 14)
        assert shapes["res5c_relu"] == (2048, 7, 7)
        assert shapes["pool5"] == (2048, 1, 1)
        assert shapes["fc1000"] == (1000, 1, 1)


class TestMeshModelSpec:
    def test_paper_published_2k_layer_shapes(self):
        """conv1_1 and conv6_1 of the 2K model (Fig. 3)."""
        net = mesh_model_2k()
        shapes = net.infer_shapes()

        c11 = net["conv1_1"]
        assert shapes["input"] == (18, 2048, 2048)
        assert c11.params == {"filters": 128, "kernel": 5, "stride": 2, "pad": 2}
        assert shapes["conv1_1"] == (128, 1024, 1024)

        c61 = net["conv6_1"]
        parent_shape = shapes[c61.parents[0]]
        assert parent_shape == (384, 64, 64)  # C=384, H=W=64
        assert c61.params == {"filters": 128, "kernel": 3, "stride": 2, "pad": 1}

    def test_block_structure(self):
        net1k = mesh_model_1k()
        net2k = mesh_model_2k()
        convs_1k = [layer for layer in net1k if layer.kind == "conv"]
        convs_2k = [layer for layer in net2k if layer.kind == "conv"]
        assert len(convs_1k) == 6 * 3 + 1  # + prediction layer
        assert len(convs_2k) == 6 * 5 + 1

    def test_final_resolution(self):
        shapes = mesh_model_1k().infer_shapes()
        assert shapes["predict"] == (1, 16, 16)  # 1024 / 2^6

    def test_bad_resolution(self):
        with pytest.raises(ValueError, match="divisible"):
            build_mesh_model(resolution=100)


class TestLocalNetworkExecution:
    def test_mesh_tiny_loss_decreases(self):
        net = LocalNetwork(mesh_model_tiny(), seed=3)
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 4, 64, 64))
        shapes = net.spec.infer_shapes()
        _, th, tw = shapes["predict"]
        t = (rng.random((2, 1, th, tw)) > 0.5).astype(float)
        opt = SGD(lr=0.5)
        losses = []
        for _ in range(8):
            loss, grads = net.loss_and_grad(x, t)
            opt.step(net.params, grads)
            losses.append(loss)
        assert losses[-1] < losses[0] * 0.9

    def test_resnet_tiny_loss_decreases(self):
        net = LocalNetwork(build_resnet_tiny(image_size=16), seed=5)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 3, 16, 16))
        labels = rng.integers(0, 10, size=4)
        opt = SGD(lr=0.1, momentum=0.9)
        losses = []
        for _ in range(10):
            loss, grads = net.loss_and_grad(x, labels)
            opt.step(net.params, grads)
            losses.append(loss)
        assert losses[-1] < losses[0]

    def test_gradcheck_through_residual_block(self):
        """End-to-end finite differences through a residual add."""
        spec = NetworkSpec("res")
        spec.add("input", "input", channels=2, height=6, width=6)
        spec.add("c1", "conv", ["input"], filters=2, kernel=3, pad=1)
        spec.add("r1", "relu", ["c1"])
        spec.add("c2", "conv", ["r1"], filters=2, kernel=3, pad=1)
        spec.add("add", "add", ["c2", "input"])
        spec.add("gap", "gap", ["add"])
        spec.add("fc", "fc", ["gap"], units=3)
        spec.add("loss", "softmax_ce", ["fc"])
        net = LocalNetwork(spec, seed=7)
        rng = np.random.default_rng(2)
        x = rng.standard_normal((2, 2, 6, 6))
        labels = np.array([0, 2])
        loss, grads = net.loss_and_grad(x, labels)

        eps = 1e-6
        w = net.params["c1"]["w"]
        for idx in [(0, 0, 0, 0), (1, 1, 2, 2)]:
            orig = w[idx]
            w[idx] = orig + eps
            lp = net.forward(x, targets=labels)
            w[idx] = orig - eps
            lm = net.forward(x, targets=labels)
            w[idx] = orig
            num = (lp - lm) / (2 * eps)
            np.testing.assert_allclose(grads["c1"]["w"][idx], num, rtol=1e-4, atol=1e-8)

    def test_gradcheck_bn_params(self):
        spec = NetworkSpec("bn")
        spec.add("input", "input", channels=2, height=4, width=4)
        spec.add("c1", "conv", ["input"], filters=3, kernel=3, pad=1)
        spec.add("b1", "bn", ["c1"])
        spec.add("r1", "relu", ["b1"])
        spec.add("gap", "gap", ["r1"])
        spec.add("fc", "fc", ["gap"], units=2)
        spec.add("loss", "softmax_ce", ["fc"])
        net = LocalNetwork(spec, seed=9)
        rng = np.random.default_rng(3)
        x = rng.standard_normal((3, 2, 4, 4))
        labels = np.array([0, 1, 0])
        loss, grads = net.loss_and_grad(x, labels)
        eps = 1e-6
        gamma = net.params["b1"]["gamma"]
        for c in range(3):
            orig = gamma[c]
            gamma[c] = orig + eps
            lp = net.forward(x, targets=labels)
            gamma[c] = orig - eps
            lm = net.forward(x, targets=labels)
            gamma[c] = orig
            num = (lp - lm) / (2 * eps)
            np.testing.assert_allclose(grads["b1"]["gamma"][c], num, rtol=1e-4, atol=1e-8)

    def test_inference_mode_uses_running_stats(self):
        spec = NetworkSpec("bn2")
        spec.add("input", "input", channels=1, height=2, width=2)
        spec.add("b1", "bn", ["input"])
        net = LocalNetwork(spec, seed=0)
        x = np.random.default_rng(4).standard_normal((4, 1, 2, 2)) + 10.0
        net.forward(x, training=True)
        out_eval = net.forward(x, training=False)["b1"]
        # Running stats were only partially updated (momentum), so eval
        # output differs from exact normalization.
        assert abs(out_eval.mean()) > 1e-3

    def test_deterministic_init_by_name(self):
        n1 = LocalNetwork(build_resnet_tiny(), seed=11)
        n2 = LocalNetwork(build_resnet_tiny(), seed=11)
        np.testing.assert_array_equal(
            n1.params["conv1"]["w"], n2.params["conv1"]["w"]
        )
        n3 = LocalNetwork(build_resnet_tiny(), seed=12)
        assert not np.array_equal(n1.params["conv1"]["w"], n3.params["conv1"]["w"])

    def test_summary_renders(self):
        s = mesh_model_tiny().summary()
        assert "conv1_1" in s and "mesh-tiny" in s


class TestSGD:
    def test_plain_update(self):
        params = {"l": {"w": np.array([1.0, 2.0])}}
        grads = {"l": {"w": np.array([0.5, 0.5])}}
        SGD(lr=0.1).step(params, grads)
        np.testing.assert_allclose(params["l"]["w"], [0.95, 1.95])

    def test_momentum_accumulates(self):
        params = {"l": {"w": np.zeros(1)}}
        grads = {"l": {"w": np.ones(1)}}
        opt = SGD(lr=1.0, momentum=0.5)
        opt.step(params, grads)
        assert params["l"]["w"][0] == pytest.approx(-1.0)
        opt.step(params, grads)
        assert params["l"]["w"][0] == pytest.approx(-2.5)  # v = 1.5

    def test_weight_decay_only_on_weights(self):
        params = {"l": {"w": np.ones(1), "gamma": np.ones(1)}}
        grads = {"l": {"w": np.zeros(1), "gamma": np.zeros(1)}}
        SGD(lr=1.0, weight_decay=0.1).step(params, grads)
        assert params["l"]["w"][0] == pytest.approx(0.9)
        assert params["l"]["gamma"][0] == pytest.approx(1.0)

    def test_bad_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
