"""Socket/TCP backend: host-map routing, parity, failure naming, no leaks.

The socket backend must be a drop-in :class:`BaseWorld`: same (source,
tag) matching, same collectives, same fault semantics — only the transport
differs (shared memory within a logical node, TCP frames across nodes).
These tests pin:

* the :class:`HostMap` abstraction (parsing, modulo folding, grouping);
* routing — a single-node map moves zero TCP bytes, the default map moves
  everything over TCP, a two-node map splits exactly along the boundary;
* cross-backend parity, **bitwise**, for the direct and scheduled
  collectives;
* cross-host failure detection — a killed rank's peers fail with
  :class:`CommAborted` naming the dead world rank;
* resource hygiene — a completed (or aborted) job leaks no sockets or
  file descriptors in the parent, mirroring the ``/dev/shm`` arena check.
"""

import gc
import os

import numpy as np
import pytest

from repro.comm import CommAborted, HostMap, run_spmd
from repro.comm.hostmap import resolve_hostmap

pytestmark = pytest.mark.filterwarnings("ignore::UserWarning")

HOSTMAP_2X2 = "0,1:A 2,3:B"


# ---------------------------------------------------------------------------
# HostMap
# ---------------------------------------------------------------------------


class TestHostMap:
    def test_parse_and_describe_roundtrip(self):
        hm = HostMap.parse(HOSTMAP_2X2)
        assert hm.size == 4
        assert hm.nnodes == 2
        assert hm.names == ("A", "B")
        assert [hm.node_of(r) for r in range(4)] == [0, 0, 1, 1]
        assert HostMap.parse(hm.describe()) == hm

    def test_ranges_and_merged_hosts(self):
        hm = HostMap.parse("0-2:n0 3,5:n1 4:n0")
        assert hm.size == 6
        assert hm.node_of(4) == 0
        assert hm.groups_for(6) == ((0, 1, 2, 4), (3, 5))

    def test_modulo_folding_reuses_one_map_for_any_job_size(self):
        hm = HostMap.parse(HOSTMAP_2X2)
        # 2 ranks: both fold onto node A -> effectively single-node.
        assert hm.is_single_node(2)
        # 8 ranks: 0,1,4,5 -> A and 2,3,6,7 -> B.
        assert hm.groups_for(8) == ((0, 1, 4, 5), (2, 3, 6, 7))

    def test_every_rank_exactly_once(self):
        with pytest.raises(ValueError):
            HostMap.parse("0,1:A 1,2:B")
        with pytest.raises(ValueError):
            HostMap.parse("0,2:A")  # rank 1 missing

    def test_env_resolution(self):
        assert resolve_hostmap(None, HOSTMAP_2X2) == HostMap.parse(HOSTMAP_2X2)
        explicit = HostMap.one_per_rank(3)
        assert resolve_hostmap(explicit, HOSTMAP_2X2) is explicit
        assert resolve_hostmap(None, None) is None


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------


def _traffic(comm):
    x = np.arange(512, dtype=np.float64) + comm.rank
    comm.allreduce(x, algorithm="ring")
    peer = (comm.rank + 1) % comm.size
    comm.send(x, peer, tag=3)
    comm.recv((comm.rank - 1) % comm.size, tag=3)
    t = comm._world.transport
    return t["tcp_messages"], t["shm_messages"] + t["inline_messages"]


class TestRouting:
    def test_single_node_map_moves_no_tcp(self):
        for tcp, local in run_spmd(
            3, _traffic, backend="socket", hostmap="0,1,2:only", timeout=60
        ):
            assert tcp == 0
            assert local > 0

    def test_default_map_moves_everything_over_tcp(self, monkeypatch):
        # The *default* map is one rank per node; shed any ambient
        # REPRO_HOSTMAP (CI's multi-host job exports one) first.
        monkeypatch.delenv("REPRO_HOSTMAP", raising=False)
        for tcp, local in run_spmd(3, _traffic, backend="socket", timeout=60):
            assert tcp > 0
            assert local == 0

    def test_two_node_map_splits_on_the_boundary(self):
        def prog(comm):
            world = comm._world
            me = comm.rank
            for peer in range(comm.size):
                if peer != me:
                    comm.send(np.full(64, me, np.float32), peer, tag=9)
            for peer in range(comm.size):
                if peer != me:
                    got = comm.recv(peer, tag=9)
                    assert np.all(got == peer)
            t = world.transport
            # 2 inter-node peers x one 256 B array each.
            return t["tcp_messages"], t["tcp_payload_bytes"]

        for tcp_msgs, tcp_payload in run_spmd(
            4, prog, backend="socket", hostmap=HOSTMAP_2X2, timeout=60
        ):
            assert tcp_msgs == 2
            assert tcp_payload == 2 * 64 * 4

    def test_hostmap_env_is_picked_up(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOSTMAP", "0,1,2:lone")

        def prog(comm):
            return comm._world.hostmap.describe(), _traffic(comm)[0]

        for desc, tcp in run_spmd(3, prog, backend="socket", timeout=60):
            assert desc == "0,1,2:lone"
            assert tcp == 0

    def test_node_of_is_uniform_across_backends(self):
        def prog(comm):
            return tuple(comm._world.node_of(r) for r in range(comm.size))

        for backend in ("thread", "process", "socket"):
            out = run_spmd(
                4, prog, backend=backend, hostmap=HOSTMAP_2X2, timeout=60
            )
            assert out == [(0, 0, 1, 1)] * 4


# ---------------------------------------------------------------------------
# Cross-backend parity (bitwise)
# ---------------------------------------------------------------------------


def _parity_prog(comm):
    rng = np.random.default_rng(1234 + comm.rank)
    x = rng.standard_normal(1536).astype(np.float32)
    out = {
        "direct": comm.allreduce(x, algorithm="direct"),
        "ring": comm.allreduce(x, algorithm="ring"),
        "hier": comm.allreduce(x, algorithm="hierarchical"),
        "bcast": comm.bcast(x if comm.rank == 1 else None, root=1),
        "gathered": comm.allgather(float(comm.rank)),
        "rs": comm.reduce_scatter([x[i::comm.size] for i in range(comm.size)]),
    }
    req = comm.iallreduce(x, algorithm="rabenseifner")
    out["nb"] = req.wait()
    return out


class TestCrossBackendParity:
    def test_socket_matches_thread_bitwise(self):
        kwargs = dict(hostmap=HOSTMAP_2X2, timeout=60)
        ref = run_spmd(4, _parity_prog, backend="thread", **kwargs)
        got = run_spmd(4, _parity_prog, backend="socket", **kwargs)
        for r, g in zip(ref, got):
            assert set(r) == set(g)
            for key in r:
                np.testing.assert_array_equal(
                    np.asarray(r[key]), np.asarray(g[key]), err_msg=key
                )


# ---------------------------------------------------------------------------
# Failure detection across logical hosts
# ---------------------------------------------------------------------------


class TestCrossHostFailure:
    def test_crashed_rank_is_named_to_survivors(self):
        def prog(comm):
            x = np.ones(4096, dtype=np.float64)
            for _ in range(10):
                comm.allreduce(x, algorithm="ring")
            return comm.rank

        out = run_spmd(
            4, prog,
            backend="socket",
            hostmap=HOSTMAP_2X2,
            faults="crash@rank3:point=send:after=2:tag=#alg",
            allow_failures=True,
            detect_interval=0.1,
            timeout=30,
        )
        assert all(isinstance(o, CommAborted) for o in out)
        # Every survivor's failure (and the dead rank's synthesized one)
        # names world rank 3 — the cross-host diagnostic contract.
        for o in out:
            assert "rank 3" in str(o)

    def test_skewed_completion_is_not_a_false_positive(self):
        # A fast rank exits (BYE + FIN) long before its peers; the EOF
        # after BYE must not be mistaken for a crash.
        def prog(comm):
            import time as _t

            x = np.arange(256, dtype=np.float64)
            got = comm.allreduce(x)
            if comm.rank:
                _t.sleep(0.4 * comm.rank)
            return float(got.sum())

        out = run_spmd(
            3, prog, backend="socket", timeout=30, detect_interval=0.1
        )
        assert out == [out[0]] * 3


# ---------------------------------------------------------------------------
# Resource hygiene
# ---------------------------------------------------------------------------


def _open_fds():
    fds = {}
    for name in os.listdir("/proc/self/fd"):
        try:
            fds[name] = os.readlink(f"/proc/self/fd/{name}")
        except OSError:
            continue
    return fds


class TestNoLeaks:
    def test_no_sockets_or_fds_leak_in_the_parent(self):
        def prog(comm):
            comm.allreduce(np.ones(8192))
            return comm.rank

        # Warm any lazily created module state first.
        run_spmd(4, prog, backend="socket", hostmap=HOSTMAP_2X2, timeout=60)
        gc.collect()
        before = _open_fds()
        for _ in range(3):
            run_spmd(4, prog, backend="socket", hostmap=HOSTMAP_2X2, timeout=60)
        gc.collect()
        after = _open_fds()
        new_sockets = [
            t for n, t in after.items()
            if t.startswith("socket:") and before.get(n) != t
        ]
        assert not new_sockets, f"leaked sockets: {new_sockets}"
        # fd *count* must not grow either (pipes, queues, shm handles).
        assert len(after) <= len(before)

    def test_no_leak_after_an_aborted_job(self):
        def prog(comm):
            comm.allreduce(np.ones(1024))
            return comm.rank

        run_spmd(2, prog, backend="socket", timeout=60)  # warm-up
        gc.collect()
        before = _open_fds()
        with pytest.raises(CommAborted):
            run_spmd(
                2, prog,
                backend="socket",
                faults="crash@rank1:point=send:after=0",
                detect_interval=0.1,
                timeout=30,
            )
        gc.collect()
        after = _open_fds()
        new_sockets = [
            t for n, t in after.items()
            if t.startswith("socket:") and before.get(n) != t
        ]
        assert not new_sockets, f"leaked sockets: {new_sockets}"


# ---------------------------------------------------------------------------
# Contract plumbing
# ---------------------------------------------------------------------------


class TestContract:
    def test_backend_name_and_registration(self):
        from repro.comm import available_backends

        assert "socket" in available_backends()

        def prog(comm):
            return comm.backend

        assert run_spmd(2, prog, backend="socket", timeout=60) == [
            "socket", "socket",
        ]

    def test_tag_matching_across_the_wire(self):
        # Out-of-order tags on one (source, dest) pair must match by tag,
        # not arrival order — the same contract the thread mailbox has.
        def prog(comm):
            peer = 1 - comm.rank
            comm.send(np.array([1.0]), peer, tag=10)
            comm.send(np.array([2.0]), peer, tag=20)
            second = comm.recv(peer, tag=20)
            first = comm.recv(peer, tag=10)
            return float(first[0]), float(second[0])

        assert run_spmd(2, prog, backend="socket", timeout=60) == [
            (1.0, 2.0), (1.0, 2.0),
        ]

    def test_received_arrays_are_frozen(self):
        def prog(comm):
            peer = 1 - comm.rank
            comm.send(np.zeros(2048), peer)  # large enough for a DATA frame
            got = comm.recv(peer)
            return got.flags.writeable

        assert run_spmd(2, prog, backend="socket", timeout=60) == [False, False]
