"""Block partition arithmetic (index sets of paper §II-C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.indexing import (
    block_bounds,
    block_coords_of_interval,
    extract_padded,
    intersect,
    interval_is_empty,
    owner_of_index,
    place_region,
)


class TestBlockBounds:
    def test_even_split(self):
        assert [block_bounds(8, 4, p) for p in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8),
        ]

    def test_remainder_goes_to_first_parts(self):
        assert [block_bounds(10, 3, p) for p in range(3)] == [(0, 4), (4, 7), (7, 10)]

    def test_more_parts_than_items(self):
        bounds = [block_bounds(2, 4, p) for p in range(4)]
        assert bounds == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            block_bounds(10, 0, 0)
        with pytest.raises(ValueError):
            block_bounds(10, 2, 2)
        with pytest.raises(ValueError):
            block_bounds(-1, 2, 0)

    @given(
        n=st.integers(min_value=0, max_value=10_000),
        nparts=st.integers(min_value=1, max_value=64),
    )
    def test_partition_properties(self, n, nparts):
        """Blocks tile [0, n) contiguously with balanced sizes."""
        bounds = [block_bounds(n, nparts, p) for p in range(nparts)]
        assert bounds[0][0] == 0
        assert bounds[-1][1] == n
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        sizes = [hi - lo for lo, hi in bounds]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n

    @given(
        n=st.integers(min_value=1, max_value=10_000),
        nparts=st.integers(min_value=1, max_value=64),
        data=st.data(),
    )
    def test_owner_inverts_bounds(self, n, nparts, data):
        index = data.draw(st.integers(min_value=0, max_value=n - 1))
        part = owner_of_index(n, nparts, index)
        lo, hi = block_bounds(n, nparts, part)
        assert lo <= index < hi


class TestIntervalHelpers:
    def test_intersect(self):
        assert intersect((0, 5), (3, 8)) == (3, 5)
        assert interval_is_empty(intersect((0, 2), (4, 6)))

    def test_block_coords_of_interval(self):
        # 12 items over 4 parts: [0,3) [3,6) [6,9) [9,12)
        assert block_coords_of_interval(12, 4, 2, 7) == (0, 2)
        assert block_coords_of_interval(12, 4, -5, 2) == (0, 0)
        assert block_coords_of_interval(12, 4, 11, 100) == (3, 3)

    def test_block_coords_empty(self):
        c0, c1 = block_coords_of_interval(12, 4, 20, 30)
        assert c1 < c0


class TestExtractPadded:
    def test_in_bounds_copy(self):
        a = np.arange(12).reshape(3, 4)
        out = extract_padded(a, (1, 1), (3, 3))
        np.testing.assert_array_equal(out, [[5, 6], [9, 10]])
        out[0, 0] = -1
        assert a[1, 1] == 5  # result is a copy

    def test_padding_all_sides(self):
        a = np.ones((2, 2))
        out = extract_padded(a, (-1, -1), (3, 3))
        assert out.shape == (4, 4)
        assert out.sum() == 4.0
        np.testing.assert_array_equal(out[1:3, 1:3], np.ones((2, 2)))
        assert out[0].sum() == 0 and out[-1].sum() == 0

    def test_fully_out_of_range(self):
        a = np.ones((2, 2))
        out = extract_padded(a, (5, 0), (7, 2), fill=-3.0)
        np.testing.assert_array_equal(out, np.full((2, 2), -3.0))

    def test_custom_fill(self):
        a = np.zeros((1, 1))
        out = extract_padded(a, (0, -1), (1, 1), fill=7.0)
        np.testing.assert_array_equal(out, [[7.0, 0.0]])

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            extract_padded(np.zeros((2, 2)), (0,), (1,))

    @given(
        n=st.integers(min_value=1, max_value=20),
        lo=st.integers(min_value=-10, max_value=25),
        width=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=60)
    def test_matches_manual_padding_1d(self, n, lo, width):
        a = np.arange(1, n + 1, dtype=float)
        out = extract_padded(a, (lo,), (lo + width,))
        padded = np.concatenate([np.zeros(30), a, np.zeros(40)])
        np.testing.assert_array_equal(out, padded[30 + lo : 30 + lo + width])


class TestPlaceRegion:
    def test_simple_write(self):
        dest = np.zeros((4, 4))
        place_region(dest, np.ones((2, 2)), (1, 1))
        assert dest.sum() == 4 and dest[1, 1] == 1

    def test_clipping(self):
        dest = np.zeros((3, 3))
        place_region(dest, np.ones((2, 2)), (2, 2))
        assert dest.sum() == 1 and dest[2, 2] == 1

    def test_accumulate(self):
        dest = np.ones((2, 2))
        place_region(dest, np.ones((2, 2)), (0, 0), accumulate=True)
        np.testing.assert_array_equal(dest, np.full((2, 2), 2.0))

    def test_fully_outside_is_noop(self):
        dest = np.zeros((2, 2))
        place_region(dest, np.ones((2, 2)), (5, 5))
        assert dest.sum() == 0

    @given(
        off=st.integers(min_value=-4, max_value=6),
    )
    def test_roundtrip_with_extract(self, off):
        """extract then place-add recovers contributions inside the array."""
        dest = np.zeros(5)
        region = np.arange(1.0, 4.0)
        place_region(dest, region, (off,), accumulate=True)
        back = extract_padded(dest, (off,), (off + 3,))
        inside = (np.arange(3) + off >= 0) & (np.arange(3) + off < 5)
        np.testing.assert_array_equal(back[inside], region[inside])
        assert (back[~inside] == 0).all()
