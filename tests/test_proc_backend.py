"""Process-backend contract: registry, transport, parity, failure, teardown.

The process backend must be a drop-in world implementation: same
communicator semantics, bitwise-identical collective arithmetic, MPI-style
abort-the-job failure handling — plus the properties that only exist with
real processes: shared-memory transport for array payloads, rank/op/seq
timeout diagnostics, and complete reclamation of every SharedMemory
segment at world teardown.
"""

import os

import numpy as np
import pytest

from repro.comm import (
    CommAborted,
    available_backends,
    resolve_backend,
    run_spmd,
)
from repro.comm.proc_backend import SHM_PREFIX
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.nn import NetworkSpec, SGD

SHM_DIR = "/dev/shm"


def _shm_segments() -> set[str]:
    if not os.path.isdir(SHM_DIR):  # pragma: no cover - non-Linux hosts
        pytest.skip("no /dev/shm on this platform")
    return {f for f in os.listdir(SHM_DIR) if f.startswith(SHM_PREFIX)}


class TestRegistry:
    def test_both_backends_registered(self):
        names = available_backends()
        assert "thread" in names and "process" in names

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown SPMD backend"):
            run_spmd(2, lambda comm: None, backend="smoke-signals")

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert resolve_backend(None) == "process"
        assert run_spmd(2, lambda comm: comm.backend) == ["process"] * 2

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        assert run_spmd(2, lambda comm: comm.backend, backend="thread") == [
            "thread"
        ] * 2

    def test_single_rank_runs_inline(self):
        # nranks == 1 executes on the calling thread for any backend.
        assert run_spmd(1, lambda comm: comm.size, backend="process") == [1]


class TestTransport:
    def test_large_arrays_ride_shared_memory(self):
        payload = np.arange(65536, dtype=np.float64)

        def prog(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1, tag=3)
                comm.barrier()
                return comm._world.transport["shm_messages"]
            got = comm.recv(source=0, tag=3)
            comm.barrier()
            np.testing.assert_array_equal(got, payload)
            # Received arrays are immutable by contract, as on the thread
            # backend's zero-copy views.
            assert not got.flags.writeable
            return True

        sender_shm, ok = run_spmd(2, prog, backend="process")
        assert ok is True
        assert sender_shm >= 1

    def test_nested_container_payloads(self):
        big = np.full(4096, 7.5)
        small = np.arange(3.0)

        def prog(comm):
            msg = {"strips": [big, small], "meta": ("tag", 9, [small.copy()])}
            if comm.rank == 0:
                comm.send(msg, dest=1)
                return True
            got = comm.recv(source=0)
            np.testing.assert_array_equal(got["strips"][0], big)
            np.testing.assert_array_equal(got["strips"][1], small)
            assert got["meta"][0] == "tag" and got["meta"][1] == 9
            np.testing.assert_array_equal(got["meta"][2][0], small)
            return True

        assert all(run_spmd(2, prog, backend="process"))

    def test_arena_exhaustion_falls_back_to_pickle(self, monkeypatch):
        """A full arena must degrade to inline pickling, never block."""
        monkeypatch.setenv("REPRO_SHM_BYTES", str(64 << 10))  # 64 KiB arena
        payload = np.arange(32768, dtype=np.float64)  # 256 KiB > arena

        def prog(comm):
            if comm.rank == 0:
                comm.send(payload, dest=1, tag=1)
                comm.barrier()
                return comm._world.transport["arena_full_fallbacks"]
            got = comm.recv(source=1 - 1, tag=1)
            comm.barrier()
            np.testing.assert_array_equal(got, payload)
            return True

        fallbacks, ok = run_spmd(2, prog, backend="process")
        assert ok is True
        assert fallbacks >= 1


class TestBitwiseParity:
    def test_collectives_match_thread_backend(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            v = rng.standard_normal(33)
            gathered = comm.gather(v, root=1)
            scattered = comm.scatter(
                [v * j for j in range(comm.size)] if comm.rank == 1 else None,
                root=1,
            )
            return (
                comm.allreduce(v),
                comm.iallreduce(v).wait(),
                comm.bcast(v if comm.rank == 0 else None),
                comm.allgather(float(v[0])),
                comm.reduce_scatter([v + j for j in range(comm.size)]),
                comm.alltoall([v[: j + 1] for j in range(comm.size)]),
                gathered if gathered is not None else [],
                scattered,
            )

        thread = run_spmd(4, prog, backend="thread")
        process = run_spmd(4, prog, backend="process")
        for t_vals, p_vals in zip(thread, process):
            for t, p in zip(t_vals, p_vals):
                if isinstance(t, list):
                    for ti, pi in zip(t, p):
                        np.testing.assert_array_equal(ti, pi)
                else:
                    np.testing.assert_array_equal(t, p)

    def test_rooted_collectives_route_narrowly(self):
        """On the process backend a direct gather flows everyone->root and a
        direct bcast root->everyone — non-participating pairs ship nothing
        (the thread backend's shared slots make routing moot there).  The
        default binomial-tree routing is covered by
        tests/test_collective_algorithms.py."""
        big = np.arange(8192, dtype=np.float64)  # well above the shm floor

        def prog(comm):
            comm.gather(big * comm.rank, root=0, algorithm="direct")
            after_gather = comm._world.transport["shm_messages"]
            comm.bcast(
                big if comm.rank == 0 else None, root=0, algorithm="direct"
            )
            after_bcast = comm._world.transport["shm_messages"]
            comm.barrier()
            return after_gather, after_bcast - after_gather

        results = run_spmd(4, prog, backend="process")
        # gather: root ships nothing, every non-root ships exactly one copy.
        assert [g for g, _ in results] == [0, 1, 1, 1]
        # bcast: root ships size-1 copies, non-roots ship nothing.
        assert [b for _, b in results] == [3, 0, 0, 0]

    def test_alltoall_ships_per_destination_pieces(self):
        """alltoall/ialltoall route only piece j to rank j (MPI volume),
        not the full payload list to every peer."""
        def prog(comm):
            big = [np.full(8192, float(j)) for j in range(comm.size)]
            got = comm.alltoall(big)
            got_nb = comm.ialltoall(big).wait()
            for i in range(comm.size):
                assert got[i][0] == float(comm.rank)
                np.testing.assert_array_equal(got[i], got_nb[i])
            comm.barrier()
            return comm._world.transport["shm_messages"]

        # 3 peers x 2 collectives = 6 single-piece messages per rank; the
        # naive allgather form would ship 6 four-piece lists instead.
        assert run_spmd(4, prog, backend="process") == [6] * 4

    def test_training_trajectory_bitwise_equal_across_backends(self):
        """Full engine parity on 4 ranks: overlapped halos, shuffles, and
        bucketed gradient allreduces produce bitwise-identical loss
        trajectories and final parameters on threads and processes."""
        spec = NetworkSpec("backend-parity")
        spec.add("input", "input", channels=2, height=9, width=11)
        spec.add("c1", "conv", ["input"], filters=4, kernel=3, pad=1, bias=True)
        spec.add("r1", "relu", ["c1"])
        spec.add("p1", "pool", ["r1"], kernel=3, stride=2, pad=1, mode="max")
        spec.add("c2", "conv", ["p1"], filters=4, kernel=3, pad=1)
        spec.add("gap", "gap", ["c2"])
        spec.add("fc", "fc", ["gap"], units=3)
        spec.add("loss", "softmax_ce", ["fc"])
        rng = np.random.default_rng(0)
        x = rng.standard_normal((4, 2, 9, 11))
        t = rng.integers(0, 3, size=4)

        def prog(comm):
            net = DistNetwork(
                spec, comm, LayerParallelism(sample=2, height=2), seed=0
            )
            trainer = DistTrainer(net, SGD(lr=0.05))
            for _ in range(3):
                trainer.step(x, t)
            params = {
                layer: {p: a.copy() for p, a in v.items()}
                for layer, v in net.params.items()
            }
            return trainer.stats.losses, params

        thread = run_spmd(4, prog, backend="thread")
        process = run_spmd(4, prog, backend="process")
        for (losses_t, params_t), (losses_p, params_p) in zip(thread, process):
            assert losses_t == losses_p
            for layer in params_t:
                for pname in params_t[layer]:
                    np.testing.assert_array_equal(
                        params_t[layer][pname], params_p[layer][pname]
                    )


class TestFailureHandling:
    def test_rank_error_propagates_with_type_and_message(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("rank 2 exploded")
            return comm.iallreduce(1).wait()  # must not hang

        with pytest.raises(ValueError, match="rank 2 exploded"):
            run_spmd(4, prog, timeout=15.0, backend="process")

    def test_collective_timeout_names_rank_op_and_seq(self):
        """A wedged nonblocking collective fails with a diagnostic naming
        the waiting rank, the operation, and its sequence number — on both
        the deposit path and the scheduled path."""

        def prog_direct(comm):
            if comm.rank == 0:
                return None  # never contributes
            return comm.iallreduce(np.ones(4), algorithm="direct").wait()

        with pytest.raises(
            CommAborted,
            match=r"iallreduce\[seq=0\].*world rank 1.*contribution of world rank 0",
        ):
            run_spmd(2, prog_direct, timeout=2.0, backend="process")

        def prog_sched(comm):
            if comm.rank == 0:
                return None  # never sends its schedule segments
            return comm.iallreduce(np.ones(4), algorithm="ring").wait()

        with pytest.raises(
            CommAborted,
            match=r"iallreduce\[seq=0, schedule step \d+\].*world rank 1 <- 0.*timed out",
        ):
            run_spmd(2, prog_sched, timeout=2.0, backend="process")

    def test_recv_timeout_names_ranks_and_tag(self):
        def prog(comm):
            if comm.rank == 0:
                return None
            return comm.recv(source=0, tag=7)

        with pytest.raises(
            CommAborted, match=r"recv\(world rank 1 <- 0.*timed out"
        ):
            run_spmd(2, prog, timeout=2.0, backend="process")

    def test_timeout_aborts_whole_job(self):
        """One rank's timeout must break peers out of unrelated waits."""

        def prog(comm):
            if comm.rank == 0:
                return comm.recv(source=1, tag=1)  # never sent: times out
            return comm.recv(source=0, tag=2)  # also never sent

        with pytest.raises(CommAborted, match="timed out|world aborted"):
            run_spmd(2, prog, timeout=2.0, backend="process")


class TestTeardown:
    def test_no_segments_leaked_after_clean_run(self):
        before = _shm_segments()

        def prog(comm):
            # Exercise the arena, including eager sends nobody receives.
            comm.send(np.ones(8192), dest=(comm.rank + 1) % comm.size, tag=50)
            return comm.allreduce(np.ones(4096))[0]

        assert run_spmd(4, prog, backend="process") == [4.0] * 4
        assert _shm_segments() == before

    def test_no_segments_leaked_after_rank_failure(self):
        before = _shm_segments()

        def prog(comm):
            comm.send(np.ones(8192), dest=(comm.rank + 1) % comm.size, tag=51)
            if comm.rank == 1:
                raise RuntimeError("mid-send failure")
            return comm.recv(source=(comm.rank - 1) % comm.size, tag=51).sum()

        with pytest.raises(RuntimeError, match="mid-send failure"):
            run_spmd(3, prog, timeout=15.0, backend="process")
        assert _shm_segments() == before

    def test_arena_blocks_freed_within_run(self):
        """Receivers free arena blocks after copying out: a long exchange
        loop cannot run the fixed arena out of space."""

        def prog(comm):
            peer = 1 - comm.rank
            data = np.full(16384, float(comm.rank))
            for i in range(64):  # 64 x 128 KiB >> default arena if leaked
                comm.send(data, dest=peer, tag=i)
                got = comm.recv(source=peer, tag=i)
                assert got[0] == float(peer)
            comm.barrier()
            return comm._world._shared.arena.used_blocks()

        # Everything consumed: at most a handful of in-flight blocks remain.
        for used in run_spmd(2, prog, backend="process"):
            assert used <= 8


class TestFaultTeardown:
    """PR 6 regressions: cleanup must survive hard deaths and never
    swallow its own failures silently."""

    def test_shm_reclaimed_after_injected_crash_mid_collective(self):
        """A rank dying by ``os._exit`` mid-collective (no unwind, no
        atexit) must not leak its /dev/shm arena segment."""
        before = _shm_segments()

        def prog(comm):
            try:
                return comm.allreduce(np.full(8192, 1.0), algorithm="ring")
            except CommAborted as exc:
                return str(exc)

        out = run_spmd(
            4,
            prog,
            backend="process",
            faults="crash@rank2:tag=#alg",
            allow_failures=True,
            detect_interval=0.2,
            timeout=20.0,
        )
        assert isinstance(out[2], CommAborted)
        assert _shm_segments() == before

    def test_timeout_message_dumps_pending_inbox(self):
        """Satellite diagnostics: the timeout abort names what *was*
        waiting in the inbox so mismatched tags are obvious."""

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(4), dest=1, tag="unwanted")
                comm.barrier()
                return None
            try:
                comm.recv(source=0, tag="wanted")
            except CommAborted as exc:
                comm.barrier()
                return str(exc)

        out = run_spmd(
            2,
            prog,
            backend="process",
            op_timeouts={"recv": 1.0},
            timeout=20.0,
            allow_failures=True,
        )
        msg = out[1]
        assert "pending inbox" in msg
        assert "'unwanted'" in msg and "source=0" in msg

    def test_teardown_logs_warnings_instead_of_swallowing(self, caplog):
        """Unit test for the satellite: a queue close or arena unlink
        failure produces a warning naming the resource, not silence."""
        import logging

        from repro.comm import proc_backend as pb

        class BadQueue:
            def close(self):
                raise OSError("queue handle already torn down")

            def cancel_join_thread(self):  # pragma: no cover - close raises
                pass

        class BadArena:
            name = "repro_shm_testdead"

            def destroy(self):
                raise FileNotFoundError("segment vanished")

        state = object.__new__(pb._SharedJobState)
        state.queues = [BadQueue()]
        state.results = BadQueue()
        state.arena = BadArena()

        with caplog.at_level(logging.WARNING, logger="repro.comm.proc_backend"):
            state.teardown()  # must not raise

        messages = [r.message for r in caplog.records]
        assert sum("failed to close queue" in m for m in messages) == 2
        assert any(
            "failed to unlink arena" in m and "repro_shm_testdead" in m
            for m in messages
        )
