"""Nonblocking communication semantics: isend/irecv/iallreduce + Request.

Covers the MPI-style contract of the request handles: out-of-order
``wait()``, ``test()`` polling loops, many operations in flight per
communicator, abort propagation into pending requests, and the zero-copy
boundary behavior the engine's overlapped gradient reducer relies on.

The whole suite runs on both the thread and the process backend (the
``backend`` fixture); the process backend uses a reduced rank matrix —
its semantics are identical, only the transport differs.
"""

import time

import numpy as np
import pytest

from conftest import reduce_for_process
from repro.comm import run_spmd, set_zero_copy


class TestIallreduce:
    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_matches_blocking_allreduce(self, nranks, backend):
        reduce_for_process(backend, nranks > 4, "nranks <= 4")

        def prog(comm):
            value = np.full(16, float(comm.rank + 1))
            blocking = comm.allreduce(value)
            nonblocking = comm.iallreduce(value).wait()
            return blocking, nonblocking

        for blocking, nonblocking in run_spmd(nranks, prog, backend=backend):
            np.testing.assert_array_equal(blocking, nonblocking)

    def test_out_of_order_wait(self, backend):
        def prog(comm):
            r1 = comm.iallreduce(np.full(4, 1.0))
            r2 = comm.iallreduce(np.full(4, 10.0))
            # Drain in reverse launch order.
            second = r2.wait()
            first = r1.wait()
            return first[0], second[0]

        for first, second in run_spmd(4, prog, backend=backend):
            assert first == 4.0
            assert second == 40.0

    def test_many_inflight_per_communicator(self, backend):
        def prog(comm):
            requests = [comm.iallreduce(np.full(8, float(i))) for i in range(12)]
            results = [r.wait() for r in reversed(requests)]
            return [r[0] for r in reversed(results)]

        for totals in run_spmd(4, prog, backend=backend):
            assert totals == [4.0 * i for i in range(12)]

    def test_wait_is_idempotent(self, backend):
        def prog(comm):
            r = comm.iallreduce(1)
            return r.wait(), r.wait(), r.complete

        for a, b, done in run_spmd(2, prog, backend=backend):
            assert a == b == 2
            assert done

    def test_test_polling_loop(self, backend):
        def prog(comm):
            if comm.rank == comm.size - 1:
                time.sleep(0.05)  # straggler: others must poll meanwhile
            r = comm.iallreduce(comm.rank + 1)
            spins = 0
            while not r.test():
                spins += 1
                time.sleep(0.001)
            return r.wait(), spins

        results = run_spmd(4, prog, backend=backend)
        assert all(total == 10 for total, _ in results)
        # At least one non-straggler rank genuinely polled while incomplete.
        assert any(spins > 0 for _, spins in results[:-1])

    def test_scalar_and_op_variants(self, backend):
        def prog(comm):
            s = comm.iallreduce(comm.rank + 1, op="max").wait()
            p = comm.iallreduce(2.0, op="prod").wait()
            return s, p

        for mx, prod in run_spmd(3, prog, backend=backend):
            assert mx == 3
            assert prod == 8.0

    def test_deterministic_combination_order(self, backend):
        """Nonblocking must perform the same float additions as blocking."""

        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            v = rng.standard_normal(64)
            return comm.allreduce(v), comm.iallreduce(v).wait()

        nranks = 8 if backend == "thread" else 4  # reduced process matrix
        for blocking, nonblocking in run_spmd(nranks, prog, backend=backend):
            np.testing.assert_array_equal(blocking, nonblocking)

    def test_fast_rank_does_not_wait_for_readers(self, backend):
        """wait() needs all *deposits*, never peer *reads* — rank 0 drains
        its request even though the other rank never waits on its own."""

        def prog(comm):
            r = comm.iallreduce(np.arange(4.0))
            if comm.rank == 0:
                out = r.wait()
                comm.barrier()
                return out
            comm.barrier()  # never calls r.wait()
            return None

        results = run_spmd(2, prog, backend=backend)
        np.testing.assert_array_equal(results[0], 2 * np.arange(4.0))

    def test_independent_subcommunicators(self, backend):
        def prog(comm):
            row = comm.split(color=comm.rank // 2)
            r = row.iallreduce(comm.rank)
            return r.wait()

        results = run_spmd(4, prog, backend=backend)
        assert results == [1, 1, 5, 5]


class TestIsendIrecv:
    def test_ring_exchange(self, backend):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.isend(np.full(8, float(comm.rank)), dest=right)
            req = comm.irecv(source=left)
            got = req.wait()
            return float(got[0])

        results = run_spmd(4, prog, backend=backend)
        assert results == [3.0, 0.0, 1.0, 2.0]

    def test_irecv_test_polling(self, backend):
        def prog(comm):
            if comm.rank == 0:
                time.sleep(0.03)
                comm.send("payload", dest=1)
                return None
            req = comm.irecv(source=0)
            polls = 0
            while not req.test():
                polls += 1
                time.sleep(0.001)
            assert req.complete
            return req.wait(), polls

        results = run_spmd(2, prog, backend=backend)
        payload, polls = results[1]
        assert payload == "payload"
        assert polls > 0

    def test_isend_is_born_complete(self, backend):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(1, dest=1)
                assert req.test() and req.complete
                req.wait()
                return None
            return comm.recv(source=0)

        assert run_spmd(2, prog, backend=backend)[1] == 1


class TestAbortPropagation:
    def test_abort_wakes_pending_wait(self, backend):
        """A rank dying before depositing must break peers out of wait()."""

        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("rank 0 died")
            req = comm.iallreduce(np.ones(4))
            return req.wait()  # must raise CommAborted, not hang

        with pytest.raises(RuntimeError, match="rank 0 died"):
            run_spmd(4, prog, timeout=10.0, backend=backend)

    def test_abort_surfaces_in_test_polling(self, backend):
        def prog(comm):
            if comm.rank == 0:
                time.sleep(0.02)
                raise RuntimeError("rank 0 died polling")
            req = comm.iallreduce(1)
            while not req.test():  # must raise CommAborted eventually
                time.sleep(0.001)
            return req.wait()

        with pytest.raises(RuntimeError, match="rank 0 died polling"):
            run_spmd(2, prog, timeout=10.0, backend=backend)

    def test_abort_wakes_pending_irecv(self, backend):
        def prog(comm):
            if comm.rank == 0:
                raise RuntimeError("sender died")
            return comm.irecv(source=0).wait()

        with pytest.raises(RuntimeError, match="sender died"):
            run_spmd(2, prog, timeout=10.0, backend=backend)


class TestZeroCopy:
    def test_iallreduce_contribution_is_not_copied(self, backend):
        """The deposit side shares contiguous arrays; results are fresh."""

        def prog(comm):
            v = np.full(8, float(comm.rank))
            out = comm.iallreduce(v).wait()
            # The reduced result is a new writable array (safe for SGD).
            assert out.flags.writeable
            assert not np.shares_memory(out, v)
            out += 1.0  # must not disturb anything
            comm.barrier()
            return float(out[0])

        assert run_spmd(4, prog, backend=backend) == [7.0] * 4

    def test_stats_record_wait_overlap_and_bytes(self, backend):
        def prog(comm):
            comm.stats.reset()
            req = comm.iallreduce(np.ones(1024))
            # Simulated overlapped compute window before draining.
            time.sleep(0.005)
            req.wait()
            s = comm.stats
            return (
                s.collectives.get("iallreduce"),
                s.collective_bytes.get("iallreduce"),
                s.wait_seconds.get("iallreduce", 0.0),
                s.overlap_seconds.get("iallreduce", 0.0),
            )

        for calls, nbytes, wait, overlap in run_spmd(2, prog, backend=backend):
            assert calls == 1
            assert nbytes == 1024 * 8
            assert wait >= 0.0
            assert overlap >= 0.004  # the sleep counts as hidden time

    def test_zero_copy_toggle_restores_copies(self, backend):
        def prog(comm):
            v = np.ones(16)
            comm.send(v, dest=comm.rank)  # self-send
            got = comm.recv(source=comm.rank)
            return np.shares_memory(v, got)

        assert run_spmd(1, prog, backend=backend) == [True]
        prev = set_zero_copy(False)
        try:
            assert run_spmd(1, prog, backend=backend) == [False]
        finally:
            set_zero_copy(prev)
