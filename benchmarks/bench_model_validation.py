"""§VI-B3: performance-model validation.

The paper validates its model against measurements and reports "its
predictions are quite accurate, and even when there are deviations, it
still has the correct trend and ranking of algorithms."  We validate at
three levels:

1. analytic model vs the discrete-event simulator (independent overlap
   bookkeeping over the same kernel costs);
2. analytic *ranking* of decompositions vs actually-measured wall-clock of
   the functional runtime on in-process ranks (scaled-down geometry,
   EmpiricalConvModel substrate — the paper's methodology on our
   "hardware");
3. measured halo traffic vs the model's SR() byte counts (exact).
"""

import time

import numpy as np
import pytest

from repro.comm import run_spmd
from repro.core.dist_conv import DistConv2d
from repro.core.parallelism import LayerParallelism, ParallelStrategy, activation_dist
from repro.nn.meshnet import mesh_model_1k
from repro.perfmodel import EmpiricalConvModel, LASSEN, NetworkCostModel
from repro.perfmodel.conv_model import ConvGeometry
from repro.sim import TrainingStepSimulator
from repro.tensor import DistTensor, ProcessGrid

try:
    from benchmarks.common import bench_main, emit, render_table
except ImportError:
    from common import bench_main, emit, render_table


def generate_model_vs_sim() -> tuple[str, list[float]]:
    spec = mesh_model_1k()
    model = NetworkCostModel(spec, LASSEN)
    sim = TrainingStepSimulator(spec, LASSEN)
    rows, ratios = [], []
    for label, par, n in [
        ("sample x4", LayerParallelism(sample=4), 4),
        ("hybrid 4x(1x2)", LayerParallelism(sample=4, width=2), 4),
        ("hybrid 4x(2x2)", LayerParallelism(sample=4, height=2, width=2), 4),
        ("hybrid 4x(4x4)", LayerParallelism(sample=4, height=4, width=4), 4),
    ]:
        strategy = ParallelStrategy.uniform(par)
        t_model = model.minibatch_time(n, strategy)
        t_sim = sim.simulate(n, strategy).minibatch_time
        ratios.append(t_sim / t_model)
        rows.append([label, f"{t_model * 1e3:8.2f}", f"{t_sim * 1e3:8.2f}",
                     f"{t_sim / t_model:5.3f}"])
    text = render_table(
        "Model validation — analytic §V model vs discrete-event simulator (1K mesh)",
        ["decomposition", "model (ms)", "event-sim (ms)", "ratio"],
        rows,
    )
    return text, ratios


def measured_functional_step(ways_hw: tuple[int, int], reps: int = 3) -> float:
    """Wall-clock of a real distributed conv fwd+bwd on in-process ranks.

    The geometry is chosen large enough that numpy kernel time (which
    releases the GIL, so ranks genuinely overlap) dominates the in-process
    communication overhead.
    """
    h = w = 192
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 8, h, w))
    wt = rng.standard_normal((32, 8, 3, 3))
    grid_shape = (1, 1) + ways_hw

    def prog(comm):
        grid = ProcessGrid(comm, grid_shape)
        xd = DistTensor.from_global(grid, activation_dist(grid_shape, x.shape), x)
        conv = DistConv2d(grid, wt, stride=1, pad=1)
        y = conv.forward(xd)  # warmup
        dy = DistTensor.from_global(grid, y.dist, np.ones(y.global_shape))
        conv.backward(dy)
        comm.barrier()
        t0 = time.perf_counter()
        for _ in range(reps):
            y = conv.forward(xd)
            conv.backward(dy)
        comm.barrier()
        return (time.perf_counter() - t0) / reps

    times = run_spmd(int(np.prod(grid_shape)), prog)
    return max(times)


def generate_measured_ranking() -> tuple[str, dict]:
    """Measured wall-clock per decomposition + the empirical model's view."""
    emp = EmpiricalConvModel(warmup=1, runs=3)
    geo = ConvGeometry(n=1, c=8, h=194, w=194, f=32, kh=3, kw=3)
    single = emp.fp(geo) + emp.bp_data(geo) + emp.bp_filter(geo)
    results = {}
    rows = []
    for label, ways in [("1 rank", (1, 1)), ("2 ranks", (2, 1)), ("4 ranks", (2, 2))]:
        t = measured_functional_step(ways)
        results[ways] = t
        rows.append([label, f"{t * 1e3:8.2f}", f"{single * 1e3:8.2f}"])
    text = render_table(
        "Model validation — measured functional runtime (in-process ranks; "
        "single-rank kernel time for reference)",
        ["decomposition", "measured (ms)", "1-rank kernels (ms)"],
        rows,
    )
    return text, results


class TestModelValidation:
    def test_model_vs_event_sim(self, benchmark):
        text, ratios = benchmark(generate_model_vs_sim)
        emit("model_validation_sim", text)
        for r in ratios:
            assert r == pytest.approx(1.0, abs=0.2)

    def test_measured_functional_ranking(self, benchmark):
        """Spatial decomposition must pay off in real measured wall-clock:
        compute dominates at this geometry and numpy kernels release the
        GIL, so in-process ranks genuinely run concurrently.  (Thread and
        mailbox overheads make the in-process runtime a correctness oracle
        rather than a performance platform, hence the loose bound.)"""
        text, results = benchmark.pedantic(
            generate_measured_ranking, rounds=1, iterations=1
        )
        emit("model_validation_measured", text)
        assert results[(2, 2)] <= results[(1, 1)] * 1.5

    def test_halo_bytes_exact(self, benchmark):
        """The model's SR() byte counts equal the measured traffic."""

        def run():
            n, c, h, w_, k = 1, 4, 32, 32, 3
            rng = np.random.default_rng(1)
            x = rng.standard_normal((n, c, h, w_))
            wt = rng.standard_normal((8, c, k, k))

            def prog(comm):
                grid = ProcessGrid(comm, (1, 1, 2, 1))
                xd = DistTensor.from_global(
                    grid, activation_dist(grid.shape, x.shape), x
                )
                conv = DistConv2d(grid, wt, stride=1, pad=1)
                comm.stats.reset()
                conv.forward(xd)
                return comm.stats.collective_bytes.get("region_data", 0)

            measured = run_spmd(2, prog)
            # O=1 halo row of the full width, float64: each rank serves one.
            expected = 1 * n * c * w_ * 8
            return measured, expected

        measured, expected = benchmark.pedantic(run, rounds=1, iterations=1)
        assert measured == [expected, expected]


def _emit_all() -> None:
    emit("model_validation_sim", generate_model_vs_sim()[0])
    emit("model_validation_measured", generate_measured_ranking()[0])


if __name__ == "__main__":
    bench_main(__doc__, _emit_all)
