"""Hierarchical allreduce on a two-tier topology: inter-node traffic and
model agreement.

A 2-logical-host × 2-rank layout (``REPRO_HOSTMAP``-style ``"0,1:A
2,3:B"``) is imposed on one machine and a per-rank allreduce is measured
three ways for each payload size:

* **flat ring** — bandwidth-optimal, but topology-blind: every schedule
  edge that crosses the host boundary pays inter-node cost (and the
  traffic is *asymmetric*: the ranks adjacent to the boundary carry it
  all);
* **hierarchical** — intra-node ring reduce-scatter, inter-node exchange
  of the owned ``n/k`` segment between node counterparts, intra-node ring
  allgather.  Same total volume ``2n(p-1)/p``, but the inter-node wire
  carries only ``allreduce_wire_bytes(m, n/k)`` per rank, uniformly;
* **model** — :func:`hierarchical_inter_wire_bytes` must equal the
  measured inter-node bytes *exactly* (payloads divisible by ``p`` keep
  the chunk table uniform), on two independent counters: the schedule
  runner's ``wire_sent_inter`` tally (thread backend) and the socket
  backend's TCP payload-byte transport counter.

Both agreements and the hierarchical < flat-ring reduction are asserted,
not just reported — this benchmark doubles as the acceptance gate for the
two-level schedules.  Emits ``benchmarks/results/BENCH_hierarchical.json``
(smoke runs write ``BENCH_hierarchical_smoke.json``).
"""

from __future__ import annotations

import argparse
import json
import os
from time import perf_counter

import numpy as np

from repro.comm import (
    TwoTierTopology,
    allreduce_wire_bytes,
    hierarchical_inter_wire_bytes,
    run_spmd,
    select_inter_algorithm,
)

try:
    from benchmarks.common import RESULTS_DIR, render_table
except ImportError:
    from common import RESULTS_DIR, render_table

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_hierarchical.json")

HOSTMAP = "0,1:A 2,3:B"
NRANKS = 4
NNODES = 2
RANKS_PER_NODE = 2

FULL_SIZES = (64 << 10, 1 << 20)  # bytes; divisible by p
SMOKE_SIZES = (64 << 10,)


def _measure_prog(comm, algorithm: str, n_elems: int, iters: int):
    """Per-rank (inter bytes, total bytes, seconds/op) for one algorithm."""
    x = np.ones(n_elems, dtype=np.float32)
    comm.allreduce(x, algorithm=algorithm)  # warm-up
    comm.stats.reset()
    comm.barrier()
    t0 = perf_counter()
    for _ in range(iters):
        comm.allreduce(x, algorithm=algorithm)
    elapsed = (perf_counter() - t0) / iters
    return (
        comm.stats.total_wire_sent_inter("allreduce") // iters,
        comm.stats.total_wire_sent("allreduce") // iters,
        elapsed,
    )


def _socket_prog(comm, n_elems: int):
    """(tcp payload bytes, CommStats inter bytes) for one hierarchical op."""
    x = np.ones(n_elems, dtype=np.float32)
    before = comm._world.transport["tcp_payload_bytes"]
    comm.stats.reset()
    comm.allreduce(x, algorithm="hierarchical")
    tcp = comm._world.transport["tcp_payload_bytes"] - before
    return tcp, comm.stats.total_wire_sent_inter("allreduce")


def measure_size(nbytes: int, iters: int, check_socket: bool = True) -> dict:
    assert nbytes % (NRANKS * 4) == 0, "payload must be divisible by p"
    n_elems = nbytes // 4
    topo = TwoTierTopology(NNODES, RANKS_PER_NODE)
    inter_alg = select_inter_algorithm(NNODES, nbytes / RANKS_PER_NODE)
    model_inter = int(hierarchical_inter_wire_bytes(nbytes, topo, inter_alg))
    model_total = int(allreduce_wire_bytes(NRANKS, nbytes, "ring"))

    flat = run_spmd(
        NRANKS, _measure_prog, "ring", n_elems, iters,
        hostmap=HOSTMAP, timeout=120,
    )
    hier = run_spmd(
        NRANKS, _measure_prog, "hierarchical", n_elems, iters,
        hostmap=HOSTMAP, timeout=120,
    )

    flat_inter_max = max(r[0] for r in flat)
    flat_inter_sum = sum(r[0] for r in flat)
    hier_inter = [r[0] for r in hier]

    # Acceptance: fewer inter-node bytes per rank than the flat ring, at
    # identical total volume, and the model's prediction is exact.
    assert max(hier_inter) < flat_inter_max, (
        f"hierarchical moved {max(hier_inter)} inter bytes/rank, "
        f"flat ring {flat_inter_max}"
    )
    assert hier_inter == [model_inter] * NRANKS, (
        f"modeled inter bytes {model_inter} != measured {hier_inter}"
    )
    assert all(r[1] == model_total for r in hier), (
        f"total volume {[r[1] for r in hier]} != ring-optimal {model_total}"
    )

    socket_ok = None
    if check_socket:
        out = run_spmd(
            NRANKS, _socket_prog, n_elems,
            backend="socket", hostmap=HOSTMAP, timeout=120,
        )
        for tcp, inter in out:
            assert tcp == inter == model_inter, (
                f"socket tcp_payload_bytes {tcp} != CommStats inter {inter} "
                f"!= model {model_inter}"
            )
        socket_ok = True

    return {
        "nbytes": nbytes,
        "inter_algorithm": inter_alg.value,
        "model_inter_bytes_per_rank": model_inter,
        "flat_ring_inter_bytes_max_rank": flat_inter_max,
        "flat_ring_inter_bytes_total": flat_inter_sum,
        "hier_inter_bytes_per_rank": model_inter,
        "inter_reduction_vs_flat_max": flat_inter_max / max(model_inter, 1),
        "total_bytes_per_rank": model_total,
        "flat_ring_s": max(r[2] for r in flat),
        "hier_s": max(r[2] for r in hier),
        "modeled_equals_measured": True,
        "socket_counter_agrees": socket_ok,
    }


def generate_hierarchical(
    sizes=FULL_SIZES,
    iters: int = 5,
    check_socket: bool = True,
    json_path: str = JSON_PATH,
):
    results = [measure_size(n, iters, check_socket) for n in sizes]

    rows = [
        (
            f"{r['nbytes'] // 1024} KiB",
            r["inter_algorithm"],
            f"{r['flat_ring_inter_bytes_max_rank']}",
            f"{r['hier_inter_bytes_per_rank']}",
            f"{r['inter_reduction_vs_flat_max']:.1f}x",
            "exact",
            "yes" if r["socket_counter_agrees"] else "skipped",
        )
        for r in results
    ]
    table = render_table(
        f"Hierarchical allreduce on {NNODES} logical hosts x "
        f"{RANKS_PER_NODE} ranks (hostmap '{HOSTMAP}'): inter-node bytes "
        "per rank, flat ring vs two-level schedule",
        ("payload", "inter alg", "flat ring (max)", "hierarchical",
         "reduction", "model", "socket agrees"),
        rows,
    )

    data = {
        "benchmark": "hierarchical",
        "hostmap": HOSTMAP,
        "nranks": NRANKS,
        "nnodes": NNODES,
        "ranks_per_node": RANKS_PER_NODE,
        "sizes": results,
    }
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w") as f:
        json.dump(data, f, indent=1)
    table += f"\n[JSON written to {json_path}]"
    return table, data


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="64 KiB only, 2 iterations; JSON to a scratch path",
    )
    args = parser.parse_args()
    try:
        from benchmarks.common import emit
    except ImportError:
        from common import emit
    if args.smoke:
        emit("bench_hierarchical", generate_hierarchical(
            sizes=SMOKE_SIZES, iters=2,
            json_path=os.path.join(
                RESULTS_DIR, "BENCH_hierarchical_smoke.json"
            ),
        )[0])
    else:
        emit("bench_hierarchical", generate_hierarchical()[0])


if __name__ == "__main__":
    main()
