"""Wall-clock microbenchmark: blocking vs overlapped inter-layer shuffle.

Runs real training steps of the in-process engine on a *residual* conv
stack whose per-block strategies alternate, so every block boundary —
including each skip connection — redistributes its activations and error
signals (paper §III-C).  With the overlapped shuffle on (the default), each
redistribution is a nonblocking all-to-all launched the moment the
producer's activation exists and drained where the consumer runs; the skip
edges therefore travel behind the main branch's convolutions, and in
backward behind the gradient bucketing.  Off, every redistribution is a
blocking collective at the consumption point, costing two rendezvous
barriers and re-synchronizing all ranks mid-step.  Both modes assemble
identical pieces from identical cached plans, so the measured delta is
purely the communication discipline.

Two levels are measured and emitted to
``benchmarks/results/BENCH_shuffle_overlap.json``:

* **engine steps** — full training-step times per config, plus the
  exposed-vs-hidden shuffle split from
  :class:`~repro.comm.stats.CommStats`.  On few-core hosts the in-process
  ranks time-share the CPU, so step time approaches the *sum* of all
  ranks' work and the overlap win is synchronization-bound and noisy
  (exactly the caveat recorded for the allreduce and halo overlap PRs);
* **collective layer** — the redistribution primitive itself: K
  activation-sized shuffles driven blocking vs. overlapped with the
  engine's launch-early/finish-late window.  This isolates the work the
  nonblocking path genuinely removes (two rendezvous barriers per
  collective) and is robust to scheduler noise.

Both world backends are measured (``--backend both``, the default); the
JSON carries one engine config row and one collective-level entry per
backend.  On the process backend the blocking collective's rendezvous is a
real message exchange per rank pair, so the overlapped path's win is
larger and hardware-true rather than scheduler-bound.

Run:  PYTHONPATH=src python benchmarks/bench_shuffle_overlap.py [--backend both]
"""

from __future__ import annotations

import json
import os
from time import perf_counter

import numpy as np

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.core.parallelism import ParallelStrategy
from repro.nn import NetworkSpec, SGD
from repro.tensor import DistTensor, Distribution, ProcessGrid
from repro.tensor.shuffle import SHUFFLE_OP, shuffle, start_shuffle

try:
    from benchmarks.common import (
        BENCH_BACKENDS, RESULTS_DIR, emit, multi_backend_main, render_table,
    )
except ImportError:
    from common import (
        BENCH_BACKENDS, RESULTS_DIR, emit, multi_backend_main, render_table,
    )

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_shuffle_overlap.json")

#: Geometry chosen to be shuffle-bound on the thread backend: every block
#: boundary (and every skip connection) redistributes, so each step performs
#: several forward and backward shuffles whose blocking form costs two
#: barrier waits each, while the overlapped form launches the skip-edge
#: exchanges an entire branch of compute before they are consumed.
HW = 16
CHANNELS = 4
DEPTH = 3
BATCH = 4


def shuffle_model() -> NetworkSpec:
    """Residual blocks whose skip connections cross strategy boundaries."""
    net = NetworkSpec("shuffle-bench")
    net.add("input", "input", channels=CHANNELS, height=HW, width=HW)
    prev = "input"
    for i in range(DEPTH):
        net.add(
            f"b{i}_c0", "conv", [prev],
            filters=CHANNELS, kernel=3, pad=1, bias=True,
        )
        net.add(f"b{i}_r", "relu", [f"b{i}_c0"])
        net.add(
            f"b{i}_c1", "conv", [f"b{i}_r"],
            filters=CHANNELS, kernel=3, pad=1, bias=True,
        )
        net.add(f"b{i}_add", "add", [f"b{i}_c1", prev])
        prev = f"b{i}_add"
    net.add("gap", "gap", [prev])
    net.add("fc", "fc", ["gap"], units=10, bias=True)
    net.add("loss", "softmax_ce", ["fc"])
    return net


def _alternating(even: LayerParallelism, odd: LayerParallelism) -> ParallelStrategy:
    """Assign ``even``/``odd`` to alternating residual blocks: the skip edge
    of each block then crosses a strategy boundary, so its shuffle can hide
    behind the block's two convolutions."""
    assignments = {"input": even}
    for i in range(DEPTH):
        par = even if i % 2 == 0 else odd
        for suffix in ("c0", "r", "c1", "add"):
            assignments[f"b{i}_{suffix}"] = par
    return ParallelStrategy(assignments, default=even)


CONFIGS = [
    (
        "sample<->spatial 2x2",
        _alternating(
            LayerParallelism(sample=4), LayerParallelism(height=2, width=2)
        ),
    ),
    (
        "spatial<->hybrid 2x(2x1)",
        _alternating(
            LayerParallelism(height=2, width=2),
            LayerParallelism(sample=2, height=2),
        ),
    ),
]


def _measure(
    strategy: ParallelStrategy, overlap_shuffle: bool, steps: int, backend: str
) -> tuple[float, dict]:
    """Max-over-ranks seconds/step plus rank-0 shuffle wait/overlap totals."""
    spec = shuffle_model()
    rng = np.random.default_rng(11)
    x = rng.standard_normal((BATCH, CHANNELS, HW, HW))
    t = rng.integers(0, 10, size=BATCH)

    def prog(comm):
        net = DistNetwork(
            spec, comm, strategy, seed=0, overlap_shuffle=overlap_shuffle
        )
        trainer = DistTrainer(net, SGD(lr=0.05))
        trainer.step(x, t)  # warmup: builds plans, sub-communicators, pools
        comm.stats.reset()
        comm.barrier()
        t0 = perf_counter()
        for _ in range(steps):
            trainer.step(x, t)
        elapsed = perf_counter() - t0
        return (
            elapsed,
            comm.stats.wait_seconds.get(SHUFFLE_OP, 0.0),
            comm.stats.overlap_seconds.get(SHUFFLE_OP, 0.0),
        )

    results = run_spmd(4, prog, backend=backend)
    per_step = max(r[0] for r in results) / steps
    detail = {
        "shuffle_exposed_s": results[0][1] / steps,
        "shuffle_hidden_s": results[0][2] / steps,
    }
    return per_step, detail


def _measure_collective(iters: int, repeats: int = 3, backend: str = "thread") -> dict:
    """The redistribution primitive itself: blocking vs overlapped.

    Latency-bound payloads (the paper's strong-scaling regime: tiny
    per-rank activations), min-of-``repeats`` per mode.  The overlapped
    driver keeps a small window of exchanges in flight — the engine's
    skip-edge pattern, where :meth:`ShuffleExchange.start` runs a whole
    branch of compute before :meth:`finish` — so deposits are long since
    complete when each exchange is drained and the two rendezvous barriers
    of the blocking collective are the measured delta.
    """
    x = np.zeros((BATCH, CHANNELS, 4, 4))

    def prog(comm):
        g1, g2 = ProcessGrid(comm, (4, 1, 1, 1)), ProcessGrid(comm, (1, 1, 2, 2))
        d1, d2 = Distribution.make((4, 1, 1, 1)), Distribution.make((1, 1, 2, 2))
        src = DistTensor.from_global(g1, d1, x)
        shuffle(src, g2, d2)  # warmup: plans + sub-communicator state
        blocking = overlapped = None
        for _ in range(repeats):
            comm.barrier()
            t0 = perf_counter()
            for _ in range(iters):
                shuffle(src, g2, d2)
            t = perf_counter() - t0
            blocking = t if blocking is None else min(blocking, t)
            comm.barrier()
            t0 = perf_counter()
            window: list = []
            for _ in range(iters):
                window.append(start_shuffle(src, g2, d2))
                if len(window) >= 4:
                    window.pop(0).finish()
            for ex in window:
                ex.finish()
            t = perf_counter() - t0
            overlapped = t if overlapped is None else min(overlapped, t)
        return blocking, overlapped

    results = run_spmd(4, prog, backend=backend)
    blocking = max(r[0] for r in results) / iters
    overlapped = max(r[1] for r in results) / iters
    return {
        "iters": iters,
        "blocking_s": blocking,
        "overlap_s": overlapped,
        "collective_speedup": blocking / overlapped,
    }


def generate_shuffle_overlap(
    steps: int = 6,
    repeats: int = 3,
    json_path: str | None = JSON_PATH,
    backends: tuple[str, ...] = BENCH_BACKENDS,
) -> tuple[str, dict]:
    """``json_path=None`` skips the JSON emission; smoke runs pass a scratch
    path so reduced-size numbers never overwrite the tracked trajectory."""
    rows, configs = [], []
    collectives: dict = {}
    for backend in backends:
        for label, strategy in CONFIGS:
            sync = min(
                _measure(strategy, overlap_shuffle=False, steps=steps,
                         backend=backend)[0]
                for _ in range(repeats)
            )
            best = None
            detail: dict = {}
            for _ in range(repeats):
                per_step, d = _measure(
                    strategy, overlap_shuffle=True, steps=steps, backend=backend
                )
                if best is None or per_step < best:
                    best, detail = per_step, d
            speedup = sync / best
            configs.append(
                {
                    "backend": backend,
                    "label": label,
                    "nranks": 4,
                    "sync_step_s": sync,
                    "overlap_step_s": best,
                    "speedup": speedup,
                    **detail,
                }
            )
            rows.append(
                [
                    backend,
                    label,
                    "4",
                    f"{sync * 1e3:8.2f}",
                    f"{best * 1e3:8.2f}",
                    f"{speedup:5.2f}x",
                    f"{detail['shuffle_hidden_s'] * 1e3:7.2f}",
                    f"{detail['shuffle_exposed_s'] * 1e3:7.2f}",
                ]
            )
        collective = _measure_collective(
            iters=max(50, 100 * steps), repeats=max(2, repeats), backend=backend
        )
        collectives[backend] = collective
        rows.append(
            [
                backend,
                "collective layer (us/shuffle)",
                "4",
                f"{collective['blocking_s'] * 1e6:8.2f}",
                f"{collective['overlap_s'] * 1e6:8.2f}",
                f"{collective['collective_speedup']:5.2f}x",
                "      -",
                "      -",
            ]
        )
    text = render_table(
        "Wall clock — blocking vs overlapped inter-layer shuffle "
        f"(measured ms/step, {steps} steps, batch {BATCH}, {HW}x{HW})",
        ["backend", "config", "ranks", "sync", "overlapped", "speedup",
         "hidden", "exposed"],
        rows,
    )
    payload = {
        "steps": steps,
        "batch": BATCH,
        "image": HW,
        "configs": configs,
        "collective": collectives,
    }
    if json_path is not None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(json_path, "w") as f:
            json.dump(payload, f, indent=2)
    return text, payload


def test_shuffle_overlap_bench_smoke():
    """The benchmark runs, engine-level overlap is never a serious
    regression (step time is scheduler-noise-bound on shared hosts), and
    the collective-level win — the work the nonblocking path removes — is
    real.  The collected tier-1 counterpart lives in
    tests/test_shuffle_overlap.py."""
    text, payload = generate_shuffle_overlap(
        steps=2, repeats=1, json_path=None, backends=("thread",)
    )
    for cfg in payload["configs"]:
        assert cfg["overlap_step_s"] > 0 and cfg["sync_step_s"] > 0
        assert cfg["speedup"] > 0.8, text
        # The shuffle split is actually measured on the overlapped path.
        assert cfg["shuffle_hidden_s"] + cfg["shuffle_exposed_s"] > 0, text
    assert payload["collective"]["thread"]["collective_speedup"] > 0.8, text


if __name__ == "__main__":
    multi_backend_main(__doc__, "bench_shuffle_overlap", generate_shuffle_overlap)
