"""Ablation: allreduce algorithm choice (§II-B, Thakur et al. models).

"Allreduces use different algorithms (e.g., ring or butterfly) for
different n and p, so its performance cannot be directly deduced from
point-to-point performance."  This ablation shows the crossovers for the
two gradient sizes that matter here (ResNet-50: 102 MB; 1K mesh: 130 MB)
and small control messages, plus a *measured* in-process allreduce.
"""

import numpy as np
import pytest

from repro.comm import (
    AllreduceAlgorithm,
    allreduce_time,
    run_spmd,
    select_allreduce_algorithm,
)
from repro.perfmodel import LASSEN

try:
    from benchmarks.common import bench_main, emit, render_table
except ImportError:
    from common import bench_main, emit, render_table

SIZES = [256, 64 * 1024, 1 * 1024 * 1024, 102 * 1024 * 1024, 130 * 1024 * 1024]
RANKS = [4, 16, 64, 512, 2048]


def generate_allreduce_ablation() -> tuple[str, dict]:
    link = LASSEN.inter_link
    rows, chosen = [], {}
    for nbytes in SIZES:
        for p in RANKS:
            times = {
                alg: allreduce_time(p, nbytes, link, alg)
                for alg in AllreduceAlgorithm
            }
            sel = select_allreduce_algorithm(p, nbytes)
            chosen[(nbytes, p)] = (sel, times)
            rows.append(
                [
                    f"{nbytes / 1024:.0f} KiB" if nbytes < 1 << 20 else f"{nbytes >> 20} MiB",
                    str(p),
                    f"{times[AllreduceAlgorithm.RECURSIVE_DOUBLING] * 1e3:9.3f}",
                    f"{times[AllreduceAlgorithm.RABENSEIFNER] * 1e3:9.3f}",
                    f"{times[AllreduceAlgorithm.RING] * 1e3:9.3f}",
                    sel.value,
                ]
            )
    text = render_table(
        "Ablation — allreduce algorithms (modeled ms, inter-node link)",
        ["message", "ranks", "rec-dbl", "rabenseifner", "ring", "selected"],
        rows,
    )
    return text, chosen


def test_allreduce_model_ablation(benchmark):
    text, chosen = benchmark(generate_allreduce_ablation)
    emit("ablation_allreduce", text)
    link = LASSEN.inter_link
    for (nbytes, p), (sel, times) in chosen.items():
        # Auto mode (algorithm=None) takes the true minimum.
        assert allreduce_time(p, nbytes, link) == pytest.approx(
            min(times.values())
        )
        if nbytes <= 2048:
            assert sel is AllreduceAlgorithm.RECURSIVE_DOUBLING
        # Bandwidth-optimal algorithms must win for gradient-sized buffers.
        if nbytes >= 1 << 20 and p >= 16:
            assert times[AllreduceAlgorithm.RABENSEIFNER] < times[
                AllreduceAlgorithm.RECURSIVE_DOUBLING
            ]


def test_measured_inprocess_allreduce(benchmark):
    """Functional allreduce on 4 in-process ranks (gradient aggregation)."""

    def run():
        def prog(comm):
            grad = np.full(1 << 16, comm.rank, dtype=np.float64)
            out = comm.allreduce(grad)
            return float(out[0])

        return run_spmd(4, prog)

    results = benchmark(run)
    assert results == [6.0] * 4  # 0+1+2+3


if __name__ == "__main__":
    bench_main(__doc__, lambda: emit(
        "ablation_allreduce", generate_allreduce_ablation()[0]))
