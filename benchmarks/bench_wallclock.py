"""Wall-clock microbenchmark: blocking vs overlapped gradient allreduce.

Runs real forward+backward+update steps of the engine on 4 and 8 ranks and
times them with the bucketed nonblocking reducer on (the default) and off
(the historical serial path: one blocking allreduce per parameter tensor
after the whole backward pass), on **both world backends**: the thread
backend (ranks time-share one interpreter, so the overlap win is the
removed synchronization) and the process backend (one OS process per rank
with shared-memory transport, where blocking collectives additionally pay
real message exchanges — and, given cores, ranks compute in parallel).
Emits a table and ``benchmarks/results/BENCH_overlap.json`` (one config
row per backend x rank count) so the step-time trajectory is tracked from
PR to PR.

Run:  PYTHONPATH=src python benchmarks/bench_wallclock.py [--backend both]
"""

from __future__ import annotations

import json
import os
from time import perf_counter

import numpy as np

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.nn import NetworkSpec, SGD

try:
    from benchmarks.common import (
        BENCH_BACKENDS, RESULTS_DIR, emit, multi_backend_main, render_table,
    )
except ImportError:
    from common import (
        BENCH_BACKENDS, RESULTS_DIR, emit, multi_backend_main, render_table,
    )

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_overlap.json")


#: Geometry chosen to be synchronization-bound: on the thread backend every
#: rank timeshares the host cores, so the overlapped reducer's win comes
#: from collapsing ~20 barrier-synchronized allreduces (w and b of each
#: layer) into a couple of nonblocking bucket drains, not from parallel
#: compute — a deep narrow stack maximizes exactly that ratio.
DEPTH = 10
FILTERS = 8
HW = 8
BATCH = 8


def bench_model() -> NetworkSpec:
    """A deep, narrow conv stack with many small parameter tensors."""
    net = NetworkSpec("bench")
    net.add("input", "input", channels=3, height=HW, width=HW)
    prev = "input"
    for i in range(DEPTH):
        net.add(f"c{i}", "conv", [prev], filters=FILTERS, kernel=3, pad=1, bias=True)
        net.add(f"r{i}", "relu", [f"c{i}"])
        prev = f"r{i}"
    net.add("gap", "gap", [prev])
    net.add("fc", "fc", ["gap"], units=10, bias=True)
    net.add("loss", "softmax_ce", ["fc"])
    return net


def _measure(
    nranks: int, overlap: bool, steps: int, batch: int, backend: str
) -> tuple[float, dict]:
    """Max-over-ranks seconds per step, plus rank-0 comm wait/overlap totals."""
    spec = bench_model()
    rng = np.random.default_rng(7)
    x = rng.standard_normal((batch, 3, HW, HW))
    t = rng.integers(0, 10, size=batch)

    def prog(comm):
        net = DistNetwork(
            spec,
            comm,
            LayerParallelism(sample=nranks),
            seed=0,
            overlap_grad_reduce=overlap,
        )
        trainer = DistTrainer(net, SGD(lr=0.05))
        trainer.step(x, t)  # warmup: builds sub-communicators and pools
        comm.stats.reset()
        comm.barrier()
        t0 = perf_counter()
        for _ in range(steps):
            trainer.step(x, t)
        elapsed = perf_counter() - t0
        return elapsed, comm.stats.total_wait_seconds(), comm.stats.total_overlap_seconds()

    results = run_spmd(nranks, prog, backend=backend)
    per_step = max(r[0] for r in results) / steps
    comm_detail = {
        "wait_s": results[0][1] / steps,
        "hidden_s": results[0][2] / steps,
    }
    return per_step, comm_detail


def generate_wallclock(
    steps: int = 6,
    batch: int = BATCH,
    repeats: int = 3,
    json_path: str | None = JSON_PATH,
    backends: tuple[str, ...] = BENCH_BACKENDS,
) -> tuple[str, dict]:
    """``json_path=None`` skips the JSON emission; smoke runs pass a scratch
    path so reduced-size numbers never overwrite the tracked trajectory."""
    rows = []
    configs = []
    for backend in backends:
        for nranks in (4, 8):
            blocking = min(
                _measure(nranks, overlap=False, steps=steps, batch=batch,
                         backend=backend)[0]
                for _ in range(repeats)
            )
            best_overlap = None
            detail = {}
            for _ in range(repeats):
                per_step, d = _measure(
                    nranks, overlap=True, steps=steps, batch=batch, backend=backend
                )
                if best_overlap is None or per_step < best_overlap:
                    best_overlap, detail = per_step, d
            speedup = blocking / best_overlap
            configs.append(
                {
                    "backend": backend,
                    "nranks": nranks,
                    "blocking_step_s": blocking,
                    "overlapped_step_s": best_overlap,
                    "speedup": speedup,
                    "allreduce_wait_s": detail["wait_s"],
                    "allreduce_hidden_s": detail["hidden_s"],
                }
            )
            rows.append(
                [
                    backend,
                    str(nranks),
                    f"{blocking * 1e3:8.2f}",
                    f"{best_overlap * 1e3:8.2f}",
                    f"{speedup:5.2f}x",
                    f"{detail['hidden_s'] * 1e3:7.2f}",
                    f"{detail['wait_s'] * 1e3:7.2f}",
                ]
            )
    text = render_table(
        "Wall clock — blocking vs overlapped+bucketed dL/dw allreduce "
        f"(measured ms/step, {steps} steps, batch {batch})",
        ["backend", "ranks", "blocking", "overlapped", "speedup", "hidden", "exposed"],
        rows,
    )
    payload = {"steps": steps, "batch": batch, "configs": configs}
    if json_path is not None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(json_path, "w") as f:
            json.dump(payload, f, indent=2)
    return text, payload


def test_wallclock_smoke():
    """The benchmark runs and reports a sane ratio."""
    text, payload = generate_wallclock(
        steps=2, repeats=1, json_path=None, backends=("thread",)
    )
    for cfg in payload["configs"]:
        assert cfg["overlapped_step_s"] > 0 and cfg["blocking_step_s"] > 0
        # Regression floor only: overlap must never be a big loss.  The
        # measured speedup itself is recorded in the JSON.
        assert cfg["speedup"] > 0.8, text


if __name__ == "__main__":
    multi_backend_main(__doc__, "bench_wallclock", generate_wallclock)
