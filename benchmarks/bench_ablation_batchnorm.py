"""Ablation: batch-norm aggregation variants (§III-B).

"Batch normalization is typically computed locally on each processor;
however ... performing batch normalization on subsets of the spatial
dimensions has not been explored.  Both purely local batch normalization
and a variant that aggregates over the spatial distribution of a sample are
easy to implement."  We compare the three variants' statistics quality and
their measured communication volume in the functional runtime.
"""

import numpy as np

from repro.comm import run_spmd
from repro.core.dist_layers import DistBatchNorm
from repro.core.parallelism import activation_dist
from repro.tensor import DistTensor, ProcessGrid

try:
    from benchmarks.common import bench_main, emit, render_table
except ImportError:
    from common import bench_main, emit, render_table

GRID = (2, 1, 2, 2)  # hybrid: 2 sample groups x 2x2 spatial


def run_variant(aggregate: str, x: np.ndarray):
    """Returns (per-rank output global assembly, allreduce calls, max |mean|)."""

    def prog(comm):
        grid = ProcessGrid(comm, GRID)
        dist = activation_dist(GRID, x.shape)
        xd = DistTensor.from_global(grid, dist, x)
        c = x.shape[1]
        bn = DistBatchNorm(grid, np.ones(c), np.zeros(c), aggregate=aggregate)
        comm.stats.reset()
        y = bn.forward(xd)
        ar_calls = comm.stats.total_collective_calls("allreduce")
        return y.to_global(), ar_calls

    results = run_spmd(8, prog)
    y = results[0][0]
    ar_calls = max(r[1] for r in results)
    return y, ar_calls


def generate_bn_ablation() -> tuple[str, dict]:
    rng = np.random.default_rng(0)
    x = rng.standard_normal((4, 3, 8, 8)) * 2.0 + 5.0
    # Strong spatial heterogeneity: local (per-tile) statistics genuinely
    # differ from whole-sample statistics, which is exactly the situation
    # where the paper's aggregation variants diverge.
    ramp = np.linspace(-4.0, 4.0, 8)
    x += ramp[None, None, :, None] + ramp[None, None, None, :]
    from repro.nn import functional as F

    c = x.shape[1]
    y_ref, _ = F.batchnorm_forward(x, np.ones(c), np.zeros(c))
    rows, data = [], {}
    for aggregate in ("local", "spatial", "global"):
        y, ar_calls = run_variant(aggregate, x)
        # Quality metric: deviation from exact single-device batch norm —
        # "global" must replicate it, "local" diverges most.
        deviation = float(np.abs(y - y_ref).max())
        data[aggregate] = (deviation, ar_calls)
        rows.append([aggregate, f"{deviation:10.3e}", str(ar_calls)])
    text = render_table(
        "Ablation — distributed batch-norm statistics aggregation "
        "(hybrid 2x(2x2) grid; deviation from single-device batch norm)",
        ["variant", "max |y - y_ref|", "allreduce calls"],
        rows,
    )
    return text, data


def test_bn_ablation(benchmark):
    text, data = benchmark.pedantic(generate_bn_ablation, rounds=1, iterations=1)
    emit("ablation_batchnorm", text)
    local, spatial, glob = data["local"], data["spatial"], data["global"]
    # Global aggregation exactly replicates single-device batch norm.
    assert glob[0] < 1e-10
    # Per-tile (local) statistics diverge most under spatial heterogeneity;
    # aggregating over each sample's spatial group is strictly closer.
    assert local[0] > spatial[0] > glob[0]
    # Communication: local needs none, spatial/global need allreduces.
    assert local[1] == 0
    assert spatial[1] >= 3 and glob[1] >= 3


def test_bn_variants_all_train(benchmark):
    """All three variants keep replicas consistent and values finite."""

    def run():
        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 2, 8, 8))
        outs = {}
        for aggregate in ("local", "spatial", "global"):
            y, _ = run_variant(aggregate, x)
            outs[aggregate] = y
        return outs

    outs = benchmark.pedantic(run, rounds=1, iterations=1)
    for y in outs.values():
        assert np.isfinite(y).all()


if __name__ == "__main__":
    bench_main(__doc__, lambda: emit(
        "ablation_batchnorm", generate_bn_ablation()[0]))
