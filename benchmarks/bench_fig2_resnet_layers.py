"""Figure 2: microbenchmarks of ResNet-50 layers conv1 and res3b_branch2a.

FP and BP time vs #GPUs (1..16) for N in {1, 4, 32} under 1/2/4/8/16
GPUs/sample, halo exchange overlapped, allreduce excluded — exactly the
paper's configuration.  The pytest-benchmark entries additionally *measure*
the real numpy kernels at the two layer geometries (scaled), which is this
substrate's analogue of the paper's cuDNN timings.
"""

import numpy as np

from repro.core.parallelism import LayerParallelism
from repro.nn import functional as F
from repro.perfmodel import CalibratedConvModel, LASSEN
from repro.perfmodel.layer_cost import conv_layer_cost

try:
    from benchmarks.common import emit, render_table
except ImportError:
    from common import emit, render_table

#: The two layers, exactly as published above the paper's plots.
LAYERS = {
    "conv1": dict(c=3, h=224, w=224, f=64, kernel=7, pad=3, stride=2),
    "res3b_branch2a": dict(c=512, h=28, w=28, f=128, kernel=1, pad=0, stride=1),
}
BATCHES = (1, 4, 32)
WAYS = (1, 2, 4, 8, 16)


def layer_times(layer: str, n: int, ways: int) -> tuple[float, float]:
    """(FP, BP) seconds for one layer at `ways` GPUs/sample (allreduce excl.)."""
    geom = LAYERS[layer]
    par = LayerParallelism.spatial_square(sample=1, ways=ways)
    cost = conv_layer_cost(
        LASSEN, CalibratedConvModel(LASSEN.gpu),
        n_global=n, parallelism=par, total_ranks=ways * 1, **geom,
    )
    return cost.fp_time(overlap=True), cost.bp_time(overlap=True)


def generate_fig2() -> str:
    blocks = []
    for layer in LAYERS:
        rows = []
        for n in BATCHES:
            for ways in WAYS:
                fp, bp = layer_times(layer, n, ways)
                rows.append(
                    [f"N={n}", f"{ways} GPUs/sample",
                     f"{fp * 1e3:8.4f}", f"{bp * 1e3:8.4f}"]
                )
        blocks.append(
            render_table(
                f"Figure 2 — {layer} "
                f"(C={LAYERS[layer]['c']} H={LAYERS[layer]['h']} "
                f"F={LAYERS[layer]['f']} K={LAYERS[layer]['kernel']})",
                ["batch", "decomposition", "FP (ms)", "BP (ms)"],
                rows,
            )
        )
    return "\n\n".join(blocks)


class TestFig2Model:
    def test_fig2_series(self, benchmark):
        text = benchmark(generate_fig2)
        emit("fig2_resnet_layers", text)

    def test_conv1_anchor(self):
        """One-GPU N=1 FP lands in the paper's ~0.035 ms decade (the
        calibration prioritizes the end-to-end tables; see EXPERIMENTS.md)
        and BP near ~0.1 ms."""
        fp, bp = layer_times("conv1", 1, 1)
        assert 20e-6 < fp < 95e-6  # paper ~35 us
        assert 50e-6 < bp < 250e-6  # paper ~100 us

    def test_res3b_no_halo(self):
        """K=1 means no halo exchange at any decomposition (paper: 'the
        filter size means that no halo exchange is needed')."""
        for ways in WAYS:
            geom = LAYERS["res3b_branch2a"]
            cost = conv_layer_cost(
                LASSEN, CalibratedConvModel(LASSEN.gpu), n_global=1,
                parallelism=LayerParallelism.spatial_square(1, ways), **geom,
            )
            assert cost.fp_halo == 0.0

    def test_res3b_fp_flattens(self):
        """'Forward propagation does not show significant performance
        improvements beyond two GPUs, due to fixed kernel overheads.'"""
        fp = [layer_times("res3b_branch2a", 1, w)[0] for w in WAYS]
        assert fp[1] <= fp[0] * 1.3  # at best marginal gain at 2 GPUs
        assert fp[4] > fp[2] * 0.5  # <2x gain from 4 -> 16 GPUs

    def test_conv1_n1_fp_does_not_scale_well(self):
        """conv1 at N=1 "does not scale well" (paper: ~1.35x at 8 GPUs,
        degrading at 16).  Our small-tile efficiency term — calibrated to
        the end-to-end tables — is more pessimistic for this single-sample
        layer (a documented deviation, see EXPERIMENTS.md); the qualitative
        behavior holds: far from linear, and no further win at 16 GPUs."""
        t1 = sum(layer_times("conv1", 1, 1))
        t8 = sum(layer_times("conv1", 1, 8))
        t16 = sum(layer_times("conv1", 1, 16))
        assert t1 / t8 < 2.0  # nowhere near the ideal 8x
        assert t16 > 0.7 * t8  # degradation / no further win at 16

    def test_large_batch_spatial_competitive(self):
        """At N=32 spatial decomposition stays competitive (halo hidden)."""
        t1 = sum(layer_times("conv1", 32, 1))
        t4 = sum(layer_times("conv1", 32, 4))
        assert t4 < t1  # still profitable


class TestFig2MeasuredKernels:
    """Real kernel timings on this host (the EmpiricalConvModel substrate)."""

    def test_conv1_kernel_forward(self, benchmark):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 3, 112, 112))
        w = rng.standard_normal((64, 3, 7, 7))
        benchmark(lambda: F.conv2d_forward(x, w, stride=2, pad=3))

    def test_res3b_kernel_forward(self, benchmark):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 512, 28, 28))
        w = rng.standard_normal((128, 512, 1, 1))
        benchmark(lambda: F.conv2d_forward(x, w))

    def test_res3b_kernel_backward_filter(self, benchmark):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((1, 512, 28, 28))
        w = rng.standard_normal((128, 512, 1, 1))
        dy = rng.standard_normal(F.conv2d_forward(x, w).shape)
        benchmark(lambda: F.conv2d_backward_filter(x, dy, kernel=1))


if __name__ == "__main__":
    emit("fig2_resnet_layers", generate_fig2())
