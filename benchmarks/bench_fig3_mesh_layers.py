"""Figure 3: microbenchmarks of 2K mesh model layers conv1_1 and conv6_1.

FP and BP vs #GPUs for N in {1, 2, 4}: the very large spatial domains where
spatial parallelism shines (conv1_1 reaches ~14.8x on 16 GPUs in the
paper), and a deep layer (conv6_1) where gains are modest (~1.4x).
"""

import pytest

from repro.core.parallelism import LayerParallelism
from repro.perfmodel import CalibratedConvModel, LASSEN
from repro.perfmodel.layer_cost import conv_layer_cost

try:
    from benchmarks.common import PAPER_FIG3_CONV1_1, emit, render_table
except ImportError:
    from common import PAPER_FIG3_CONV1_1, emit, render_table

#: Published above the paper's plots.
LAYERS = {
    "conv1_1": dict(c=18, h=2048, w=2048, f=128, kernel=5, pad=2, stride=2),
    "conv6_1": dict(c=384, h=64, w=64, f=128, kernel=3, pad=1, stride=2),
}
BATCHES = (1, 2, 4)
WAYS = (1, 2, 4, 8, 16)


def layer_times(layer: str, n: int, ways: int) -> tuple[float, float]:
    geom = LAYERS[layer]
    par = LayerParallelism.spatial_square(sample=1, ways=ways)
    cost = conv_layer_cost(
        LASSEN, CalibratedConvModel(LASSEN.gpu),
        n_global=n, parallelism=par, total_ranks=ways, **geom,
    )
    return cost.fp_time(overlap=True), cost.bp_time(overlap=True)


def generate_fig3() -> str:
    blocks = []
    for layer, geom in LAYERS.items():
        rows = []
        for n in BATCHES:
            for ways in WAYS:
                fp, bp = layer_times(layer, n, ways)
                rows.append(
                    [f"N={n}", f"{ways} GPUs/sample",
                     f"{fp * 1e3:9.3f}", f"{bp * 1e3:9.3f}"]
                )
        blocks.append(
            render_table(
                f"Figure 3 — {layer} (C={geom['c']} H={geom['h']} F={geom['f']} "
                f"K={geom['kernel']} P={geom['pad']} S={geom['stride']})",
                ["batch", "decomposition", "FP (ms)", "BP (ms)"],
                rows,
            )
        )
    return "\n\n".join(blocks)


class TestFig3:
    def test_fig3_series(self, benchmark):
        emit("fig3_mesh_layers", benchmark(generate_fig3))

    def test_conv1_1_anchor(self):
        """Paper: ~7.5 ms FP / ~30 ms BP at one GPU, N=1."""
        fp, bp = layer_times("conv1_1", 1, 1)
        assert fp * 1e3 == pytest.approx(PAPER_FIG3_CONV1_1["fp_ms"], rel=0.5)
        assert bp * 1e3 == pytest.approx(PAPER_FIG3_CONV1_1["bp_ms"], rel=0.5)

    def test_conv1_1_excellent_scaling(self):
        """Paper: ~14.8x speedup on 16 GPUs at N=1 (halos well hidden)."""
        t1 = sum(layer_times("conv1_1", 1, 1))
        t16 = sum(layer_times("conv1_1", 1, 16))
        assert 10.0 < t1 / t16 <= 16.5

    def test_conv6_1_modest_scaling(self):
        """Paper: continued but *modest* benefit (~1.4x) for the deep
        layer, in stark contrast to conv1_1's ~14.8x.  Our small-tile
        efficiency term (calibrated to the end-to-end tables) is more
        pessimistic for this 8x8-per-GPU case — a documented deviation
        (EXPERIMENTS.md); the qualitative contrast with conv1_1 holds by
        an order of magnitude."""
        t1 = sum(layer_times("conv6_1", 1, 1))
        t16 = sum(layer_times("conv6_1", 1, 16))
        deep_gain = t1 / t16
        big_gain = sum(layer_times("conv1_1", 1, 1)) / sum(layer_times("conv1_1", 1, 16))
        assert deep_gain < 2.5  # nothing like linear
        assert big_gain > 5 * deep_gain  # the paper's headline contrast

    def test_four_sample_halo_minor(self):
        """'With four samples, the overhead of the halo exchange is very
        minor': spatial-4 within ~25% of the ideal quarter of 1-GPU time."""
        t1 = sum(layer_times("conv1_1", 4, 1))
        t4 = sum(layer_times("conv1_1", 4, 4))
        assert t4 < 0.25 * t1 * 1.25

    def test_bp_fp_ratio_matches_paper(self):
        """Fig. 3 shows BP ~ 3-4x FP for conv1_1 on one GPU."""
        fp, bp = layer_times("conv1_1", 1, 1)
        assert 2.0 < bp / fp < 5.0


if __name__ == "__main__":
    emit("fig3_mesh_layers", generate_fig3())
