"""Table III: ResNet-50 strong scaling.

Sample parallelism at 32 samples/GPU vs hybrid parallelism with the same
32 samples spread over 2 or 4 GPUs, for mini-batch sizes 128..32768.
"""


from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.nn.resnet import build_resnet50
from repro.perfmodel import LASSEN, NetworkCostModel

try:
    from benchmarks.common import PAPER_TABLE3, emit, fmt, render_table
except ImportError:
    from common import PAPER_TABLE3, emit, fmt, render_table

SAMPLES_PER_GROUP = 32
MAX_GPUS = 4096


def predicted_cell(model: NetworkCostModel, n: int, ways: int) -> float | None:
    groups = n // SAMPLES_PER_GROUP
    par = LayerParallelism.spatial_square(sample=groups, ways=ways)
    if par.nranks > MAX_GPUS:
        return None
    return model.minibatch_time(n, ParallelStrategy.uniform(par))


def generate_table3() -> tuple[str, dict]:
    model = NetworkCostModel(build_resnet50(), LASSEN)
    ours: dict[int, list[float | None]] = {}
    rows = []
    for n, paper_row in PAPER_TABLE3.items():
        our_row = [predicted_cell(model, n, w) for w in (1, 2, 4)]
        ours[n] = our_row
        cells = [str(n)]
        for pv, ov in zip(paper_row, our_row):
            ov = ov if pv is not None else None
            cells.append(fmt(pv))
            cells.append(fmt(ov))
            if pv and ov:
                cells.append(f"{paper_row[0] / pv:.1f}x/{our_row[0] / ov:.1f}x")
            else:
                cells.append("n/a")
        rows.append(cells)
    header = ["N"]
    for label in ("sample 32/gpu", "hybrid 32/2gpu", "hybrid 32/4gpu"):
        header += [f"{label} paper", "ours", "spdup p/o"]
    text = render_table(
        "Table III — ResNet-50 strong scaling (mini-batch seconds; speedup vs sample parallelism)",
        header,
        rows,
    )
    return text, ours


def test_table3_reproduction(benchmark):
    text, ours = benchmark(generate_table3)
    emit("table3_resnet_strong", text)
    for n, row in ours.items():
        paper = PAPER_TABLE3[n]
        # Hybrid 2-way: ~1.3-1.5x; hybrid 4-way: ~1.4-1.8x; never linear.
        if row[1] is not None and paper[1] is not None:
            assert 1.2 <= row[0] / row[1] <= 1.8
        if row[2] is not None and paper[2] is not None:
            s4 = row[0] / row[2]
            assert 1.3 <= s4 <= 2.2
            assert s4 < 4.0  # "achieving near-linear speedup is unlikely"


def test_table3_absolute_band(benchmark):
    def check():
        model = NetworkCostModel(build_resnet50(), LASSEN)
        worst = 0.0
        for n, paper_row in PAPER_TABLE3.items():
            for w, pv in zip((1, 2, 4), paper_row):
                if pv is None:
                    continue
                ov = predicted_cell(model, n, w)
                worst = max(worst, abs(ov / pv - 1.0))
        return worst

    assert benchmark(check) < 0.40


if __name__ == "__main__":
    emit("table3_resnet_strong", generate_table3()[0])
