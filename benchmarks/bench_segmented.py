"""Segmented collective schedules: pipelined vs whole-schedule allreduce.

Sweeps algorithm x segment size x payload x rank count through the
engine's *segmented* schedules (``allreduce(..., segment_bytes=...)``) and
lines up, per configuration:

* **measured_s** — wall time per call (fastest of ``repeats`` barrier-
  synchronized loops, slowest rank);
* **modeled_s** — ``pipelined_segmented_allreduce_time``: the first
  segment pays the full schedule, each further segment drains one
  pipeline round behind it (``t_seg + (nseg-1) * t_seg / L``);
* **wire bytes** — the rank's measured wire counter *and* the process
  backend's shared-memory transport counter against
  ``segmented_allreduce_wire_bytes``.  For payloads divisible by
  ``nseg * p`` the three must agree **exactly** (asserted): segmentation
  re-chunks the schedule, it never changes the volume;
* **segments** — the ``CommStats.collective_segments`` counter, proving
  the pipeline actually engaged (``nseg`` per call, 0 unsegmented).

The headline (written to the JSON): at 1 MiB on 4 process ranks the
model prices the segmented ring/Rabenseifner schedule >= 1.2x over the
whole-buffer schedule, rising past 2x at 4 MiB on 8 ranks.  The measured
column only tracks that ratio when the host can actually run ranks
concurrently: pipelining hides segment ``k+1``'s transfer behind segment
``k``'s reduction, so on a host with fewer cores than ranks (CI
containers are often 1-core; see ``host_cpu_count`` /
``pipelining_effective`` in the JSON) wall time degenerates to the
summed work of all ranks and the measured ratio hovers near 1x — the
same collapse the paper's model predicts when computation cannot overlap
communication.

Run:  PYTHONPATH=src python benchmarks/bench_segmented.py [--backend process]
"""

from __future__ import annotations

import json
import os
from time import perf_counter

import numpy as np

from repro.comm import run_spmd
from repro.comm.collective_models import (
    pipelined_segmented_allreduce_time,
    segmented_allreduce_wire_bytes,
    select_segment_bytes,
)
from repro.perfmodel.machine import LASSEN

try:
    from benchmarks.common import (
        RESULTS_DIR, multi_backend_main, render_table,
    )
except ImportError:
    from common import RESULTS_DIR, multi_backend_main, render_table

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_segmented.json")

ALGS = ("ring", "rabenseifner", "recursive_doubling")

#: Segment sizes swept per payload: whole schedule, the model's pick, and
#: two forced power-of-two sizes bracketing it.
FULL_SIZES = (1_048_576, 4_194_304)
SMOKE_SIZES = (262_144,)
FULL_RANKS = (4, 8)
SMOKE_RANKS = (4,)

#: The acceptance configuration: segmented vs whole allreduce at 1 MiB on
#: 4 process ranks (modeled >= 1.2x for the bandwidth-optimal schedules).
HEADLINE_RANKS = 4
HEADLINE_BYTES = 1_048_576


def _segments_for(nbytes: int) -> tuple:
    """Segment-size sweep for one payload: None (whole) plus pof2 forces
    chosen so ``nbytes`` divides evenly into ``nseg * p`` chunks."""
    return (None, nbytes // 2, nbytes // 4)


def _bench_prog(comm, algorithm: str, nbytes: int, seg, iters: int):
    """Timed loop on every rank; returns (s/call, wire, shm delta, nseg)."""
    x = np.full(nbytes // 8, 1.0 + comm.rank)

    def call():
        comm.allreduce(x, algorithm=algorithm, segment_bytes=seg)

    call()  # warm pools, plans, arenas
    comm.stats.reset()
    transport = getattr(comm._world, "transport", None)
    shm_before = transport["shm_bytes"] if transport else 0
    comm.barrier()
    t0 = perf_counter()
    for _ in range(iters):
        call()
    comm.barrier()
    seconds = (perf_counter() - t0) / iters
    wire = comm.stats.total_wire_sent("allreduce") / iters
    shm = ((transport["shm_bytes"] - shm_before) / iters) if transport else None
    nseg = comm.stats.total_segments("allreduce") / iters
    return seconds, wire, shm, nseg


def generate_segmented(
    ranks=FULL_RANKS,
    sizes=FULL_SIZES,
    backends=("process",),
    iters=5,
    repeats=3,
    json_path=JSON_PATH,
):
    configs = []
    rows = []
    whole_times: dict[tuple, float] = {}
    for backend in backends:
        for p in ranks:
            link = LASSEN.link_for_group(p)
            for alg in ALGS:
                for nbytes in sizes:
                    for seg in _segments_for(nbytes):
                        best = None
                        for _ in range(repeats):
                            res = run_spmd(
                                p, _bench_prog, alg, nbytes, seg, iters,
                                backend=backend,
                            )
                            secs = max(r[0] for r in res)  # slowest rank
                            if best is None or secs < best[0]:
                                best = (
                                    secs,
                                    max(r[1] for r in res),
                                    max(r[2] for r in res)
                                    if res[0][2] is not None
                                    else None,
                                    res[0][3],
                                )
                        measured_s, wire, shm, nseg = best
                        modeled_s = pipelined_segmented_allreduce_time(
                            p, nbytes, link, seg, alg
                        )
                        modeled_wire = segmented_allreduce_wire_bytes(
                            p, nbytes, seg, alg
                        )
                        # Segmentation re-chunks the schedule without
                        # changing its volume: for these evenly divisible
                        # payloads the measured wire counter (and, on the
                        # process backend, the shared-memory transport
                        # counter) must equal the model to the byte.
                        if wire != modeled_wire:
                            raise AssertionError(
                                f"wire bytes diverged from model for "
                                f"{alg} p={p} nbytes={nbytes} seg={seg}: "
                                f"measured {wire} != modeled {modeled_wire}"
                            )
                        if shm is not None and shm != modeled_wire:
                            raise AssertionError(
                                f"shm transport bytes diverged from model "
                                f"for {alg} p={p} nbytes={nbytes} "
                                f"seg={seg}: {shm} != {modeled_wire}"
                            )
                        if seg is None:
                            whole_times[(backend, p, alg, nbytes)] = (
                                measured_s
                            )
                        base = whole_times.get((backend, p, alg, nbytes))
                        speedup_measured = (
                            base / measured_s if base else None
                        )
                        whole_model = pipelined_segmented_allreduce_time(
                            p, nbytes, link, None, alg
                        )
                        speedup_modeled = whole_model / modeled_s
                        configs.append({
                            "backend": backend,
                            "algorithm": alg,
                            "ranks": p,
                            "payload_bytes": nbytes,
                            "segment_bytes": seg,
                            "segments_per_call": nseg,
                            "measured_s": measured_s,
                            "modeled_s": modeled_s,
                            "wire_sent_per_rank": wire,
                            "modeled_wire_per_rank": modeled_wire,
                            "shm_bytes_per_rank": shm,
                            "speedup_measured": speedup_measured,
                            "speedup_modeled": speedup_modeled,
                        })
                        rows.append([
                            backend, alg, p, nbytes,
                            "whole" if seg is None else seg,
                            f"{nseg:.0f}",
                            f"{measured_s * 1e3:.3f}",
                            f"{modeled_s * 1e3:.4f}",
                            f"{wire:.0f}",
                            f"{modeled_wire:.0f}",
                            "-" if speedup_measured is None
                            else f"{speedup_measured:.2f}x",
                            f"{speedup_modeled:.2f}x",
                        ])

    # Headline: the model's own segment pick at 1 MiB on 4 ranks, priced
    # against the whole schedule (>= 1.2x for ring/Rabenseifner).
    headline = {}
    link = LASSEN.link_for_group(HEADLINE_RANKS)
    for alg in ALGS:
        sel = select_segment_bytes(HEADLINE_RANKS, HEADLINE_BYTES, link, alg)
        whole = pipelined_segmented_allreduce_time(
            HEADLINE_RANKS, HEADLINE_BYTES, link, None, alg
        )
        seg_t = pipelined_segmented_allreduce_time(
            HEADLINE_RANKS, HEADLINE_BYTES, link, sel, alg
        )
        measured = [
            c for c in configs
            if c["ranks"] == HEADLINE_RANKS
            and c["payload_bytes"] == HEADLINE_BYTES
            and c["algorithm"] == alg
            and c["segment_bytes"] == sel
        ]
        headline[alg] = {
            "segment_bytes": sel,
            "speedup_modeled": whole / seg_t,
            "speedup_measured": (
                measured[0]["speedup_measured"] if measured else None
            ),
        }
    cores = os.cpu_count() or 1
    data = {
        "iters": iters,
        "repeats": repeats,
        "host_cpu_count": cores,
        # Pipelining needs ranks to run concurrently: on a host with fewer
        # cores than ranks, wall time is the *sum* of all ranks' work and
        # the measured speedup collapses toward 1x regardless of schedule.
        "pipelining_effective": cores >= HEADLINE_RANKS,
        "headline_ranks": HEADLINE_RANKS,
        "headline_payload_bytes": HEADLINE_BYTES,
        "headline": headline,
        "configs": configs,
    }
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w") as f:
        json.dump(data, f, indent=1)

    table = render_table(
        "Segmented allreduce schedules: pipelined vs whole (per call, per rank)",
        ["backend", "algorithm", "p", "bytes", "segment", "nseg",
         "meas ms", "model ms", "wire B", "model wire B",
         "meas spd", "model spd"],
        rows,
    )
    hl = ", ".join(
        f"{alg}: {h['speedup_modeled']:.2f}x @ seg={h['segment_bytes']}"
        for alg, h in headline.items()
    )
    note = (
        "\nwire B == model wire B byte-for-byte (asserted): segmentation\n"
        "re-chunks the schedule without changing its volume.  Headline\n"
        f"(modeled, {HEADLINE_BYTES} B on {HEADLINE_RANKS} ranks): {hl}.\n"
        f"Measured speedups track the model only when the host runs ranks\n"
        f"concurrently (this host: {cores} core(s) — pipelining "
        f"{'effective' if cores >= HEADLINE_RANKS else 'collapses to summed work'}).\n"
        f"[JSON written to {json_path}]"
    )
    return table + note, data


def main() -> None:
    multi_backend_main(__doc__, "bench_segmented", generate_segmented)


if __name__ == "__main__":
    main()
