"""Table I: 1K mesh model strong scaling.

Regenerates the paper's Table I — mini-batch time and speedup over
1 GPU/sample for mini-batch sizes 4..1024 and 1/2/4/8/16 GPUs/sample —
from the calibrated performance model, printed beside the published values.

Run directly (``python benchmarks/bench_table1_mesh1k_strong.py``) or under
``pytest benchmarks/ --benchmark-only``.
"""


from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.nn.meshnet import mesh_model_1k
from repro.perfmodel import LASSEN, NetworkCostModel

try:
    from benchmarks.common import PAPER_TABLE1, TABLE1_WAYS, emit, fmt, render_table
except ImportError:  # direct script execution from benchmarks/
    from common import PAPER_TABLE1, TABLE1_WAYS, emit, fmt, render_table

MAX_GPUS = 2048


def predicted_cell(model: NetworkCostModel, n: int, ways: int) -> float | None:
    par = LayerParallelism.spatial_square(sample=n, ways=ways)
    if par.nranks > MAX_GPUS:
        return None  # the paper marks these n/a (beyond 512 nodes)
    return model.minibatch_time(n, ParallelStrategy.uniform(par))


def generate_table1() -> tuple[str, dict]:
    model = NetworkCostModel(mesh_model_1k(), LASSEN)
    ours: dict[int, list[float | None]] = {}
    rows = []
    for n, paper_row in PAPER_TABLE1.items():
        our_row = [predicted_cell(model, n, w) for w in TABLE1_WAYS]
        ours[n] = our_row
        base_paper, base_ours = paper_row[0], our_row[0]
        cells = [str(n)]
        for pv, ov in zip(paper_row, our_row):
            ov = ov if pv is not None else None  # mirror the paper's n/a cells
            cells.append(fmt(pv))
            cells.append(fmt(ov))
            sp = f"{base_paper / pv:.1f}x/{base_ours / ov:.1f}x" if pv and ov else "n/a"
            cells.append(sp)
        rows.append(cells)
    header = ["N"]
    for w in TABLE1_WAYS:
        header += [f"{w}g paper", f"{w}g ours", "spdup p/o"]
    text = render_table(
        "Table I — 1K mesh strong scaling (mini-batch seconds; speedup vs 1 GPU/sample)",
        header,
        rows,
    )
    return text, ours


def test_table1_reproduction(benchmark):
    text, ours = benchmark(generate_table1)
    emit("table1_mesh1k_strong", text)
    # Shape checks: near-ideal 2-way speedup, diminishing returns after.
    for n, row in ours.items():
        paper = PAPER_TABLE1[n]
        if row[1] is not None and paper[1] is not None:
            assert 1.8 <= row[0] / row[1] <= 2.1
        if row[2] is not None and paper[2] is not None:
            assert 2.8 <= row[0] / row[2] <= 3.9
        if row[4] is not None and paper[4] is not None:
            s16 = row[0] / row[4]
            s8 = row[0] / row[3]
            assert s8 < s16 < 2 * s8  # sub-linear gain from 8 -> 16


def test_table1_absolute_times_in_band(benchmark):
    """Every predicted cell within 40% of the paper's measurement."""

    def check():
        model = NetworkCostModel(mesh_model_1k(), LASSEN)
        worst = 0.0
        for n, paper_row in PAPER_TABLE1.items():
            for w, pv in zip(TABLE1_WAYS, paper_row):
                if pv is None:
                    continue
                ov = predicted_cell(model, n, w)
                worst = max(worst, abs(ov / pv - 1.0))
        return worst

    worst = benchmark(check)
    assert worst < 0.40


if __name__ == "__main__":
    text, _ = generate_table1()
    emit("table1_mesh1k_strong", text)
