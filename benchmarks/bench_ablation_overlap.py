"""Ablation: communication/computation overlap (§IV-A).

The paper's implementation overlaps (a) halo exchanges with interior
convolution and (b) the dL/dw allreduce with backpropagation.  This
ablation quantifies both via the discrete-event simulator.
"""

import pytest

from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.nn.meshnet import mesh_model_1k, mesh_model_2k
from repro.sim import TrainingStepSimulator
from repro.perfmodel import LASSEN

try:
    from benchmarks.common import emit, render_table
except ImportError:
    from common import emit, render_table

CONFIGS = [
    ("1K, 4x(2x2)", mesh_model_1k, LayerParallelism(sample=4, height=2, width=2), 4),
    ("1K, 4x(4x4)", mesh_model_1k, LayerParallelism(sample=4, height=4, width=4), 4),
    ("2K, 2x(2x2)", mesh_model_2k, LayerParallelism(sample=2, height=2, width=2), 2),
    ("2K, 2x(4x4)", mesh_model_2k, LayerParallelism(sample=2, height=4, width=4), 2),
]


def generate_overlap_ablation() -> tuple[str, list[tuple[float, float, float, float]]]:
    rows, data = [], []
    for label, spec_fn, par, n in CONFIGS:
        spec = spec_fn()
        strategy = ParallelStrategy.uniform(par)
        both = TrainingStepSimulator(spec, LASSEN).simulate(n, strategy).minibatch_time
        no_halo = TrainingStepSimulator(
            spec, LASSEN, overlap_halo=False
        ).simulate(n, strategy).minibatch_time
        no_ar = TrainingStepSimulator(
            spec, LASSEN, overlap_allreduce=False
        ).simulate(n, strategy).minibatch_time
        none = TrainingStepSimulator(
            spec, LASSEN, overlap_halo=False, overlap_allreduce=False
        ).simulate(n, strategy).minibatch_time
        data.append((both, no_halo, no_ar, none))
        rows.append(
            [label, f"{both * 1e3:8.2f}", f"{no_halo * 1e3:8.2f}",
             f"{no_ar * 1e3:8.2f}", f"{none * 1e3:8.2f}",
             f"{none / both:5.2f}x"]
        )
    text = render_table(
        "Ablation — overlap of halo exchange and allreduce (simulated ms)",
        ["config", "both", "no halo ovl", "no AR ovl", "neither", "benefit"],
        rows,
    )
    return text, data


def test_overlap_ablation(benchmark):
    text, data = benchmark(generate_overlap_ablation)
    emit("ablation_overlap", text)
    for both, no_halo, no_ar, none in data:
        assert both <= no_halo + 1e-9
        assert both <= no_ar + 1e-9
        assert none >= max(no_halo, no_ar) - 1e-9
    # Overlap must matter somewhere (the fine decompositions).
    assert any(none / both > 1.05 for both, _, _, none in data)


if __name__ == "__main__":
    emit("ablation_overlap", generate_overlap_ablation()[0])
