"""Ablation: communication/computation overlap (§IV-A).

The paper's implementation overlaps (a) halo exchanges with interior
convolution and (b) the dL/dw allreduce with backpropagation.  This
ablation quantifies both via the discrete-event simulator — including the
bucketed-allreduce variant matching the engine's
:class:`~repro.core.grad_reducer.BucketedGradReducer` — and then runs the
*real* in-process engine (blocking vs overlapped gradient reduction) next
to the simulated timeline.
"""

from time import perf_counter

import numpy as np

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism, ParallelStrategy
from repro.nn import NetworkSpec, SGD
from repro.nn.meshnet import mesh_model_1k, mesh_model_2k
from repro.sim import TrainingStepSimulator
from repro.perfmodel import LASSEN

try:
    from benchmarks.common import bench_main, emit, render_table
except ImportError:
    from common import bench_main, emit, render_table

CONFIGS = [
    ("1K, 4x(2x2)", mesh_model_1k, LayerParallelism(sample=4, height=2, width=2), 4),
    ("1K, 4x(4x4)", mesh_model_1k, LayerParallelism(sample=4, height=4, width=4), 4),
    ("2K, 2x(2x2)", mesh_model_2k, LayerParallelism(sample=2, height=2, width=2), 2),
    ("2K, 2x(4x4)", mesh_model_2k, LayerParallelism(sample=2, height=4, width=4), 2),
]

#: Bucket size for the simulated bucketed reducer (the mesh models carry
#: multi-MB conv gradients, so coalescing targets the BN/bias small fry).
SIM_BUCKET_BYTES = 1 << 22


def generate_overlap_ablation() -> tuple[str, list[tuple[float, float, float, float]]]:
    rows, data = [], []
    for label, spec_fn, par, n in CONFIGS:
        spec = spec_fn()
        strategy = ParallelStrategy.uniform(par)
        both = TrainingStepSimulator(spec, LASSEN).simulate(n, strategy).minibatch_time
        bucketed = TrainingStepSimulator(
            spec, LASSEN, allreduce_bucket_bytes=SIM_BUCKET_BYTES
        ).simulate(n, strategy).minibatch_time
        no_halo = TrainingStepSimulator(
            spec, LASSEN, overlap_halo=False
        ).simulate(n, strategy).minibatch_time
        no_ar = TrainingStepSimulator(
            spec, LASSEN, overlap_allreduce=False
        ).simulate(n, strategy).minibatch_time
        none = TrainingStepSimulator(
            spec, LASSEN, overlap_halo=False, overlap_allreduce=False
        ).simulate(n, strategy).minibatch_time
        data.append((both, no_halo, no_ar, none, bucketed))
        rows.append(
            [label, f"{both * 1e3:8.2f}", f"{bucketed * 1e3:8.2f}",
             f"{no_halo * 1e3:8.2f}", f"{no_ar * 1e3:8.2f}",
             f"{none * 1e3:8.2f}", f"{none / both:5.2f}x"]
        )
    text = render_table(
        "Ablation — overlap of halo exchange and allreduce (simulated ms)",
        ["config", "both", "bucketed", "no halo ovl", "no AR ovl", "neither", "benefit"],
        rows,
    )
    return text, data


def _engine_spec() -> NetworkSpec:
    net = NetworkSpec("ablation-engine")
    net.add("input", "input", channels=3, height=8, width=8)
    prev = "input"
    for i in range(6):
        net.add(f"c{i}", "conv", [prev], filters=8, kernel=3, pad=1, bias=True)
        net.add(f"r{i}", "relu", [f"c{i}"])
        prev = f"r{i}"
    net.add("gap", "gap", [prev])
    net.add("fc", "fc", ["gap"], units=10, bias=True)
    net.add("loss", "softmax_ce", ["fc"])
    return net


def generate_engine_vs_sim(nranks: int = 4, steps: int = 4) -> tuple[str, dict]:
    """Measured engine step time (blocking vs overlapped) next to the
    simulator's prediction of the same toggle.

    The simulator models the paper's GPU cluster, the engine runs numpy
    threads on the host, so the *absolute* times differ wildly by design —
    the comparison is between the two overlap-on/overlap-off ratios.
    """
    spec = _engine_spec()
    strategy = ParallelStrategy.uniform(LayerParallelism(sample=nranks))
    rng = np.random.default_rng(3)
    x = rng.standard_normal((8, 3, 8, 8))
    t = rng.integers(0, 10, size=8)

    def measure(overlap: bool) -> float:
        def prog(comm):
            net = DistNetwork(
                spec, comm, strategy, seed=0, overlap_grad_reduce=overlap
            )
            trainer = DistTrainer(net, SGD(lr=0.05))
            trainer.step(x, t)
            comm.barrier()
            t0 = perf_counter()
            for _ in range(steps):
                trainer.step(x, t)
            return perf_counter() - t0
        return max(run_spmd(nranks, prog)) / steps

    measured_block = min(measure(False) for _ in range(2))
    measured_ovl = min(measure(True) for _ in range(2))
    sim_ovl = TrainingStepSimulator(spec, LASSEN).simulate(
        nranks, strategy
    ).minibatch_time
    sim_block = TrainingStepSimulator(
        spec, LASSEN, overlap_allreduce=False, overlap_halo=False
    ).simulate(nranks, strategy).minibatch_time
    rows = [
        ["measured (engine)", f"{measured_block * 1e3:9.3f}",
         f"{measured_ovl * 1e3:9.3f}", f"{measured_block / measured_ovl:5.2f}x"],
        ["simulated (model)", f"{sim_block * 1e3:9.3f}",
         f"{sim_ovl * 1e3:9.3f}", f"{sim_block / sim_ovl:5.2f}x"],
    ]
    text = render_table(
        f"Engine vs simulated timeline — gradient-allreduce overlap "
        f"({nranks} ranks, ms/step)",
        ["source", "blocking", "overlapped", "benefit"],
        rows,
    )
    return text, {
        "measured_blocking_s": measured_block,
        "measured_overlapped_s": measured_ovl,
        "sim_blocking_s": sim_block,
        "sim_overlapped_s": sim_ovl,
    }


def test_overlap_ablation(benchmark):
    text, data = benchmark(generate_overlap_ablation)
    emit("ablation_overlap", text)
    for both, no_halo, no_ar, none, bucketed in data:
        assert both <= no_halo + 1e-9
        assert both <= no_ar + 1e-9
        assert none >= max(no_halo, no_ar) - 1e-9
        # Bucketing trades a slightly later start for fewer latencies; it
        # must never be worse than running every allreduce serially.
        assert bucketed <= no_ar + 1e-9
    # Overlap must matter somewhere (the fine decompositions).
    assert any(none / both > 1.05 for both, _, _, none, _ in data)


def test_engine_vs_sim_overlap():
    text, data = generate_engine_vs_sim(nranks=4, steps=2)
    emit("ablation_overlap_engine", text)
    assert data["sim_overlapped_s"] <= data["sim_blocking_s"] + 1e-12
    assert data["measured_overlapped_s"] > 0


def _emit_all() -> None:
    emit("ablation_overlap", generate_overlap_ablation()[0])
    emit("ablation_overlap_engine", generate_engine_vs_sim()[0])


if __name__ == "__main__":
    bench_main(__doc__, _emit_all)
