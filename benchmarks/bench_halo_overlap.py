"""Wall-clock microbenchmark: synchronous vs overlapped halo exchange.

Runs real training steps of the in-process engine under spatial and hybrid
partitionings with the overlapped halo exchange on (the default) and off
(the historical path: a blocking collective ``gather_region`` before every
convolution's forward and backward-data kernels).  Both modes execute the
identical interior/boundary kernel decomposition, so the measured delta is
purely the communication discipline: nonblocking point-to-point strips
assembled behind the interior convolution versus two barrier-synchronized
all-to-alls per gather.

Also reports the measured exposed-vs-hidden halo time split from
:class:`~repro.comm.stats.CommStats` (the empirical counterpart of the
cost model's ``max(interior, halo)`` term) and emits
``benchmarks/results/BENCH_halo_overlap.json`` so the step-time trajectory
is tracked from PR to PR.

Both world backends are measured (``--backend both``, the default): on
the thread backend the ranks time-share the interpreter, so the delta is
removed synchronization; on the process backend the blocking gather's two
all-to-all collectives cost real message exchanges per rank, and the
nonblocking strips remove them entirely.

Run:  PYTHONPATH=src python benchmarks/bench_halo_overlap.py [--backend both]
"""

from __future__ import annotations

import json
import os
from time import perf_counter

import numpy as np

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.nn import NetworkSpec, SGD
from repro.tensor.halo import HALO_OP

try:
    from benchmarks.common import (
        BENCH_BACKENDS, RESULTS_DIR, emit, multi_backend_main, render_table,
    )
except ImportError:
    from common import (
        BENCH_BACKENDS, RESULTS_DIR, emit, multi_backend_main, render_table,
    )

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_halo_overlap.json")

#: Geometry chosen to be halo-bound on the thread backend: several stacked
#: 3x3/5x5 convolutions on a modest image so each step performs many halo
#: exchanges whose synchronous form costs four barrier waits per gather
#: (two collective all-to-alls), while the overlapped form costs none.
HW = 16
CHANNELS = 4
DEPTH = 4
BATCH = 4

CONFIGS = [
    ("spatial 2x2", LayerParallelism(height=2, width=2)),
    ("hybrid 2x(2x1)", LayerParallelism(sample=2, height=2)),
]


def halo_model() -> NetworkSpec:
    """A conv stack dominated by spatially partitioned halo exchanges."""
    net = NetworkSpec("halo-bench")
    net.add("input", "input", channels=3, height=HW, width=HW)
    prev = "input"
    for i in range(DEPTH):
        k = 5 if i == 1 else 3
        net.add(
            f"c{i}", "conv", [prev],
            filters=CHANNELS, kernel=k, pad=k // 2, bias=True,
        )
        net.add(f"r{i}", "relu", [f"c{i}"])
        prev = f"r{i}"
    net.add("gap", "gap", [prev])
    net.add("fc", "fc", ["gap"], units=10, bias=True)
    net.add("loss", "softmax_ce", ["fc"])
    return net


def _measure(
    par: LayerParallelism, overlap_halo: bool, steps: int, backend: str
) -> tuple[float, dict]:
    """Max-over-ranks seconds/step plus rank-0 halo wait/overlap totals."""
    spec = halo_model()
    rng = np.random.default_rng(11)
    x = rng.standard_normal((BATCH, 3, HW, HW))
    t = rng.integers(0, 10, size=BATCH)

    def prog(comm):
        net = DistNetwork(
            spec, comm, par, seed=0, overlap_halo=overlap_halo
        )
        trainer = DistTrainer(net, SGD(lr=0.05))
        trainer.step(x, t)  # warmup: builds sub-communicators and pools
        comm.stats.reset()
        comm.barrier()
        t0 = perf_counter()
        for _ in range(steps):
            trainer.step(x, t)
        elapsed = perf_counter() - t0
        return (
            elapsed,
            comm.stats.wait_seconds.get(HALO_OP, 0.0),
            comm.stats.overlap_seconds.get(HALO_OP, 0.0),
        )

    results = run_spmd(par.nranks, prog, backend=backend)
    per_step = max(r[0] for r in results) / steps
    detail = {
        "halo_exposed_s": results[0][1] / steps,
        "halo_hidden_s": results[0][2] / steps,
    }
    return per_step, detail


def generate_halo_overlap(
    steps: int = 6,
    repeats: int = 3,
    json_path: str | None = JSON_PATH,
    backends: tuple[str, ...] = BENCH_BACKENDS,
) -> tuple[str, dict]:
    """``json_path=None`` skips the JSON emission; smoke runs pass a scratch
    path so reduced-size numbers never overwrite the tracked trajectory."""
    rows, configs = [], []
    for backend in backends:
        for label, par in CONFIGS:
            sync = min(
                _measure(par, overlap_halo=False, steps=steps, backend=backend)[0]
                for _ in range(repeats)
            )
            best = None
            detail: dict = {}
            for _ in range(repeats):
                per_step, d = _measure(
                    par, overlap_halo=True, steps=steps, backend=backend
                )
                if best is None or per_step < best:
                    best, detail = per_step, d
            speedup = sync / best
            configs.append(
                {
                    "backend": backend,
                    "label": label,
                    "nranks": par.nranks,
                    "sync_step_s": sync,
                    "overlap_step_s": best,
                    "speedup": speedup,
                    **detail,
                }
            )
            rows.append(
                [
                    backend,
                    label,
                    str(par.nranks),
                    f"{sync * 1e3:8.2f}",
                    f"{best * 1e3:8.2f}",
                    f"{speedup:5.2f}x",
                    f"{detail['halo_hidden_s'] * 1e3:7.2f}",
                    f"{detail['halo_exposed_s'] * 1e3:7.2f}",
                ]
            )
    text = render_table(
        "Wall clock — synchronous vs overlapped halo exchange "
        f"(measured ms/step, {steps} steps, batch {BATCH}, {HW}x{HW})",
        ["backend", "config", "ranks", "sync", "overlapped", "speedup",
         "hidden", "exposed"],
        rows,
    )
    payload = {"steps": steps, "batch": BATCH, "image": HW, "configs": configs}
    if json_path is not None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        with open(json_path, "w") as f:
            json.dump(payload, f, indent=2)
    return text, payload


def test_halo_overlap_bench_smoke():
    """The benchmark runs and overlap is never a serious regression (the
    measured speedup itself goes into the JSON on full runs).  The collected
    tier-1 counterpart lives in tests/test_halo_overlap.py."""
    text, payload = generate_halo_overlap(
        steps=2, repeats=1, json_path=None, backends=("thread",)
    )
    for cfg in payload["configs"]:
        assert cfg["overlap_step_s"] > 0 and cfg["sync_step_s"] > 0
        assert cfg["speedup"] > 0.8, text
        # The halo split is actually measured on the overlapped path.
        assert cfg["halo_hidden_s"] + cfg["halo_exposed_s"] > 0, text


if __name__ == "__main__":
    multi_backend_main(__doc__, "bench_halo_overlap", generate_halo_overlap)
