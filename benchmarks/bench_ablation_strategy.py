"""Ablation: optimizer-selected strategies vs uniform decompositions (§V-C).

The paper evaluates uniform decompositions ("we use the same data
decomposition for every layer ... although this is not necessarily
optimal; we leave exploring more varied decompositions to future work").
The strategy optimizer is exactly that future work: this ablation shows
where per-layer strategies beat the best uniform one.
"""


from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.core.strategy import StrategyOptimizer, factorizations
from repro.nn.meshnet import mesh_model_2k
from repro.nn.resnet import build_resnet50
from repro.perfmodel import LASSEN, MemoryModel, NetworkCostModel

try:
    from benchmarks.common import emit, render_table
except ImportError:
    from common import emit, render_table

CONFIGS = [
    ("ResNet-50, 16 ranks, N=64", build_resnet50, 16, 64),
    ("ResNet-50, 16 ranks, N=512", build_resnet50, 16, 512),
    ("2K mesh, 16 ranks, N=2", mesh_model_2k, 16, 2),
    ("2K mesh, 64 ranks, N=8", mesh_model_2k, 64, 8),
]


def best_uniform(spec, ranks: int, n: int) -> tuple[str, float]:
    model = NetworkCostModel(spec, LASSEN)
    memory = MemoryModel(spec, LASSEN)
    best = ("none", float("inf"))
    for s, h, w in factorizations(ranks):
        if s > n:
            continue
        par = LayerParallelism(sample=s, height=h, width=w)
        strategy = ParallelStrategy.uniform(par)
        if not memory.fits(n, strategy):
            continue
        try:
            t = model.minibatch_time(n, strategy)
        except ValueError:
            continue
        if t < best[1]:
            best = (par.describe(), t)
    return best


def generate_strategy_ablation() -> tuple[str, list]:
    rows, data = [], []
    for label, spec_fn, ranks, n in CONFIGS:
        spec = spec_fn()
        uni_label, uni_t = best_uniform(spec, ranks, n)
        report = StrategyOptimizer(spec, LASSEN, ranks, n).optimize()
        opt_t = report.predicted_time
        distinct = max(
            1, len({p.grid_shape for p in report.strategy.assignments().values()})
        )
        data.append((uni_t, opt_t))
        rows.append(
            [label, uni_label, f"{uni_t * 1e3:8.2f}", f"{opt_t * 1e3:8.2f}",
             f"{uni_t / opt_t:5.3f}x", str(distinct)]
        )
    text = render_table(
        "Ablation — best uniform decomposition vs optimizer (predicted ms)",
        ["config", "best uniform", "uniform", "optimized", "gain", "#dists"],
        rows,
    )
    return text, data


def test_strategy_ablation(benchmark):
    text, data = benchmark.pedantic(
        generate_strategy_ablation, rounds=1, iterations=1
    )
    emit("ablation_strategy", text)
    for uni_t, opt_t in data:
        # The optimizer never loses to the best uniform strategy by more
        # than the shuffle-estimate noise.
        assert opt_t <= uni_t * 1.05


if __name__ == "__main__":
    emit("ablation_strategy", generate_strategy_ablation()[0])
