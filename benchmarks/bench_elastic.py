"""Elastic-recovery costs of the PR 10 supervisor: what a mid-run rank
kill charges end to end, and how the replay bill scales with checkpoint
cadence.

One measured section, swept over ``checkpoint_every``:

* a 2-rank training run is killed by an injected hard crash mid-step on
  the process backend, supervised by :class:`ElasticRunner`;
* the supervisor classifies the failure, relaunches, and the relaunched
  world resumes from the newest common checkpoint — **bitwise** identical
  to an uninterrupted run (that contract lives in
  ``tests/test_elastic.py``; here we only price it);
* per cadence we record the resumed step, the steps replayed (work done
  once, paid twice), the supervisor's failure-detection time, and the
  whole-job recovery overhead versus an uninterrupted reference run.

Sparse checkpointing is cheap per step but bills more replayed steps per
failure — the sweep makes that trade concrete for ROADMAP's checkpoint
cadence guidance.

Emits a table and ``benchmarks/results/BENCH_elastic.json`` (smoke runs
write ``BENCH_elastic_smoke.json`` so the tracked trajectory is never
clobbered by reduced sizes).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import tempfile
from time import monotonic

import numpy as np

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.core.elastic import ElasticRunner
from repro.nn import NetworkSpec, SGD

try:
    from benchmarks.common import RESULTS_DIR, render_table
except ImportError:
    from common import RESULTS_DIR, render_table

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_elastic.json")

NRANKS = 2
CRASH_RANK = 1
# The bench net compiles 5 "#alg"-tagged sends per rank per training
# step, so a send-count fault placed at 5*k + 2 fires mid-step k.
SENDS_PER_STEP = 5

FULL_EVERY = (1, 2, 4)
FULL_NSTEPS = 8
FULL_CRASH_STEP = 7
SMOKE_EVERY = (2,)
SMOKE_NSTEPS = 4
SMOKE_CRASH_STEP = 3


def _spec() -> NetworkSpec:
    spec = NetworkSpec("elastic_bench")
    spec.add("input", "input", channels=1, height=8, width=8)
    spec.add("c1", "conv", ["input"], filters=4, kernel=3, pad=1, bias=True)
    spec.add("b1", "bn", ["c1"])
    spec.add("r1", "relu", ["b1"])
    spec.add("gap", "gap", ["r1"])
    spec.add("fc", "fc", ["gap"], units=3)
    spec.add("loss", "softmax_ce", ["fc"])
    return spec


def _etrain(comm, ckdir: str, nsteps: int, every: int):
    """Elastic entry point: resume from whatever checkpoints exist, train
    to ``nsteps``, report where the resume landed plus a bitwise digest of
    the final parameters (so CI can compare runs without shipping them)."""
    net = DistNetwork(_spec(), comm, LayerParallelism(sample=comm.size), seed=0)
    trainer = DistTrainer(
        net,
        SGD(lr=0.05, momentum=0.9, weight_decay=1e-4),
        checkpoint_dir=ckdir,
        checkpoint_every=every,
        rng=np.random.default_rng(42),
    )
    resumed = trainer.resume_elastic()
    resumed_step = resumed[0] if resumed else 0
    for _ in range(trainer.step_index, nsteps):
        x = trainer.rng.standard_normal((4, 1, 8, 8))
        t = trainer.rng.integers(0, 3, size=4)
        trainer.step(x, t)
    digest = hashlib.sha256()
    for layer in sorted(net.params):
        for pname in sorted(net.params[layer]):
            digest.update(np.ascontiguousarray(net.params[layer][pname]))
    return resumed_step, trainer.step_index, digest.hexdigest()


def _timed_reference(nsteps: int, every: int) -> float:
    with tempfile.TemporaryDirectory() as ckdir:
        t0 = monotonic()
        run_spmd(
            NRANKS, _etrain, ckdir, nsteps, every,
            backend="process", timeout=120.0,
        )
        return monotonic() - t0


def _timed_recovery(nsteps: int, crash_step: int, every: int):
    """Kill mid-step ``crash_step``, let the supervisor heal the job."""
    fault = (
        f"crash@rank{CRASH_RANK}:tag=#alg:"
        f"after={crash_step * SENDS_PER_STEP + 2}"
    )
    with tempfile.TemporaryDirectory() as ckdir:
        t0 = monotonic()
        report = ElasticRunner(
            NRANKS, backend="process", backoff=0.0, sleep=lambda s: None,
            faults=[fault], checkpoint_dir=ckdir,
            detect_interval=0.2, timeout=120.0,
        ).run(_etrain, ckdir, nsteps, every)
        elapsed = monotonic() - t0
    if not report.ok or report.total_restarts != 1:
        raise RuntimeError(f"elastic bench run misbehaved: {report.describe()}")
    [rec] = report.restarts
    resumed_step = max(r[0] for r in report.results)
    return elapsed, rec.detect_seconds, resumed_step


def measure_cadence(every_values, nsteps: int, crash_step: int, repeats: int):
    rows = []
    for every in every_values:
        ref_s = min(_timed_reference(nsteps, every) for _ in range(repeats))
        best = None
        for _ in range(repeats):
            run = _timed_recovery(nsteps, crash_step, every)
            if best is None or run[0] < best[0]:
                best = run
        elapsed, detect_s, resumed_step = best
        rows.append({
            "checkpoint_every": every,
            "resumed_step": resumed_step,
            "steps_replayed": crash_step - resumed_step,
            "detect_s": detect_s,
            "reference_s": ref_s,
            "elastic_s": elapsed,
            "recovery_overhead_s": elapsed - ref_s,
        })
    return rows


def generate_elastic(
    every_values=FULL_EVERY,
    nsteps: int = FULL_NSTEPS,
    crash_step: int = FULL_CRASH_STEP,
    repeats: int = 3,
    json_path: str = JSON_PATH,
):
    cadence = measure_cadence(every_values, nsteps, crash_step, repeats)

    table = render_table(
        f"Elastic recovery cost vs checkpoint cadence (process backend, "
        f"{NRANKS} ranks, rank {CRASH_RANK} killed mid-step {crash_step} "
        f"of {nsteps}, auto-resumed bitwise)",
        ("every", "resumed step", "replayed", "detect (ms)",
         "recovery overhead (ms)"),
        [
            (
                str(r["checkpoint_every"]),
                str(r["resumed_step"]),
                str(r["steps_replayed"]),
                f"{r['detect_s'] * 1e3:.0f}",
                f"{r['recovery_overhead_s'] * 1e3:.0f}",
            )
            for r in cadence
        ],
    )

    data = {
        "benchmark": "elastic",
        "nranks": NRANKS,
        "nsteps": nsteps,
        "crash_step": crash_step,
        "cadence": cadence,
    }
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w") as f:
        json.dump(data, f, indent=1)
    table += f"\n[JSON written to {json_path}]"
    return table, data


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="single cadence, 4 steps, 1 repeat; JSON to a scratch path",
    )
    args = parser.parse_args()
    try:
        from benchmarks.common import emit
    except ImportError:
        from common import emit
    if args.smoke:
        emit("bench_elastic", generate_elastic(
            every_values=SMOKE_EVERY, nsteps=SMOKE_NSTEPS,
            crash_step=SMOKE_CRASH_STEP, repeats=1,
            json_path=os.path.join(RESULTS_DIR, "BENCH_elastic_smoke.json"),
        )[0])
    else:
        emit("bench_elastic", generate_elastic()[0])


if __name__ == "__main__":
    main()
