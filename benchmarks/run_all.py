"""Regenerate every table and figure of the paper in one run.

Writes rendered tables to ``benchmarks/results/`` and prints them.

Run:  python benchmarks/run_all.py
      python benchmarks/run_all.py --smoke   # reduced sizes, seconds not minutes
      python benchmarks/run_all.py --smoke --backend process

``--smoke`` exists so CI can exercise every benchmark entry point on tiny
shapes (2-4 in-process ranks, a couple of steps) — the numbers are
meaningless, but import errors, API drift, and crashed generators are
caught before they rot.  ``--backend`` selects which SPMD world the
measured engine benchmarks run on: a smoke pass measures just that
backend (the CI process-backend job passes ``--backend process``), while
the full run always sweeps both so the tracked BENCH_*.json trajectories
carry a thread column and a process column side by side.
"""

import argparse
import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

from common import emit, resolve_backends  # noqa: E402

import bench_table1_mesh1k_strong as t1  # noqa: E402
import bench_table2_mesh2k_strong as t2  # noqa: E402
import bench_table3_resnet_strong as t3  # noqa: E402
import bench_fig2_resnet_layers as f2  # noqa: E402
import bench_fig3_mesh_layers as f3  # noqa: E402
import bench_fig4_weak_scaling as f4  # noqa: E402
import bench_model_validation as mv  # noqa: E402
import bench_ablation_overlap as ao  # noqa: E402
import bench_ablation_allreduce as aa  # noqa: E402
import bench_ablation_batchnorm as ab  # noqa: E402
import bench_ablation_strategy as ast_  # noqa: E402
import bench_wallclock as bw  # noqa: E402
import bench_halo_overlap as bh  # noqa: E402
import bench_shuffle_overlap as bs  # noqa: E402
import bench_collectives as bc  # noqa: E402
import bench_segmented as bseg  # noqa: E402
import bench_fault_recovery as bfr  # noqa: E402
import bench_elastic as be  # noqa: E402
import bench_hierarchical as bhi  # noqa: E402
import bench_trace_overhead as bto  # noqa: E402


def run_smoke(backends: tuple[str, ...] = ("thread",)) -> None:
    """Fast subset: one analytic table, the overlap ablation (simulated),
    and the measured engine benchmarks at minimum size on the selected
    backend(s).

    Reduced-size JSONs go to ``*_smoke.json`` scratch paths (gitignored) so
    a smoke pass can never overwrite the tracked perf-trajectory files.
    """
    results = os.path.join(os.path.dirname(__file__), "results")
    emit("table1_mesh1k_strong", t1.generate_table1()[0])
    emit("ablation_overlap", ao.generate_overlap_ablation()[0])
    emit("bench_wallclock", bw.generate_wallclock(
        steps=2, repeats=1, backends=backends,
        json_path=os.path.join(results, "BENCH_overlap_smoke.json"))[0])
    emit("bench_halo_overlap", bh.generate_halo_overlap(
        steps=2, repeats=1, backends=backends,
        json_path=os.path.join(results, "BENCH_halo_overlap_smoke.json"))[0])
    emit("bench_shuffle_overlap", bs.generate_shuffle_overlap(
        steps=2, repeats=1, backends=backends,
        json_path=os.path.join(results, "BENCH_shuffle_overlap_smoke.json"))[0])
    emit("bench_collectives", bc.generate_collectives(
        ranks=(4,), sizes=bc.SMOKE_SIZES, backends=backends,
        iters=2, repeats=1,
        json_path=os.path.join(results, "BENCH_collectives_smoke.json"))[0])
    emit("bench_segmented", bseg.generate_segmented(
        ranks=bseg.SMOKE_RANKS, sizes=bseg.SMOKE_SIZES, backends=backends,
        iters=2, repeats=1,
        json_path=os.path.join(results, "BENCH_segmented_smoke.json"))[0])
    emit("bench_fault_recovery", bfr.generate_fault_recovery(
        detect_intervals=bfr.SMOKE_INTERVALS, steps=2, repeats=1,
        json_path=os.path.join(
            results, "BENCH_fault_recovery_smoke.json"))[0])
    emit("bench_elastic", be.generate_elastic(
        every_values=be.SMOKE_EVERY, nsteps=be.SMOKE_NSTEPS,
        crash_step=be.SMOKE_CRASH_STEP, repeats=1,
        json_path=os.path.join(results, "BENCH_elastic_smoke.json"))[0])
    emit("bench_hierarchical", bhi.generate_hierarchical(
        sizes=bhi.SMOKE_SIZES, iters=2,
        json_path=os.path.join(
            results, "BENCH_hierarchical_smoke.json"))[0])
    emit("bench_trace_overhead", bto.generate_trace_overhead(
        steps=4, repeats=2,
        json_path=os.path.join(
            results, "BENCH_trace_overhead_smoke.json"))[0])
    print("\nSmoke subset regenerated under benchmarks/results/.")


def run_full() -> None:
    emit("table1_mesh1k_strong", t1.generate_table1()[0])
    emit("table2_mesh2k_strong", t2.generate_table2()[0])
    emit("table3_resnet_strong", t3.generate_table3()[0])
    emit("fig2_resnet_layers", f2.generate_fig2())
    emit("fig3_mesh_layers", f3.generate_fig3())
    emit("fig4_weak_scaling_1k", f4.generate_fig4("1k")[0])
    emit("fig4_weak_scaling_2k", f4.generate_fig4("2k")[0])
    emit("model_validation_sim", mv.generate_model_vs_sim()[0])
    emit("model_validation_measured", mv.generate_measured_ranking()[0])
    emit("ablation_overlap", ao.generate_overlap_ablation()[0])
    emit("ablation_overlap_engine", ao.generate_engine_vs_sim()[0])
    emit("ablation_allreduce", aa.generate_allreduce_ablation()[0])
    emit("ablation_batchnorm", ab.generate_bn_ablation()[0])
    emit("ablation_strategy", ast_.generate_strategy_ablation()[0])
    emit("bench_wallclock", bw.generate_wallclock()[0])
    emit("bench_halo_overlap", bh.generate_halo_overlap()[0])
    emit("bench_shuffle_overlap", bs.generate_shuffle_overlap()[0])
    emit("bench_collectives", bc.generate_collectives()[0])
    emit("bench_segmented", bseg.generate_segmented()[0])
    emit("bench_fault_recovery", bfr.generate_fault_recovery()[0])
    emit("bench_elastic", be.generate_elastic()[0])
    emit("bench_hierarchical", bhi.generate_hierarchical()[0])
    emit("bench_trace_overhead", bto.generate_trace_overhead()[0])
    print("\nAll tables and figures regenerated under benchmarks/results/.")


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a reduced-size subset (tiny shapes, few steps) in seconds",
    )
    parser.add_argument(
        "--backend",
        choices=("thread", "process", "both"),
        default="thread",
        help="SPMD backend(s) for the measured engine benchmarks in a smoke "
        "pass (the full run always sweeps both)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        run_smoke(backends=resolve_backends(args.backend))
    else:
        run_full()


if __name__ == "__main__":
    main()
