"""Fault-recovery costs of the PR 6 runtime: how fast a dead rank is
detected, and what checkpointing charges per training step.

Two measured sections:

* **Detection latency** — a rank is killed by an injected hard crash
  (``os._exit``) mid-allreduce on the process backend and every survivor
  times the gap from entering the collective to its ``CommAborted``.  The
  sweep over ``detect_interval`` shows latency tracking the heartbeat
  cadence, not the (deliberately huge) op timeout — the contract tested in
  ``tests/test_faults.py`` is ``< 2 x detect_interval``.

* **Checkpoint overhead** — per-step wall time of a small training run
  with ``checkpoint_every=1`` against the same run without checkpointing,
  plus the isolated atomic-save and resume-restore costs.

Emits a table and ``benchmarks/results/BENCH_fault_recovery.json`` (smoke
runs write ``BENCH_fault_recovery_smoke.json`` so the tracked trajectory
is never clobbered by reduced sizes).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from time import monotonic, perf_counter

import numpy as np

from repro.comm import CommAborted, run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.nn import NetworkSpec, SGD

try:
    from benchmarks.common import RESULTS_DIR, render_table
except ImportError:
    from common import RESULTS_DIR, render_table

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_fault_recovery.json")

FULL_INTERVALS = (0.1, 0.25, 0.5)
SMOKE_INTERVALS = (0.2,)
NRANKS = 4
CRASH_RANK = 1


# -- detection latency -------------------------------------------------------
def _detect_prog(comm):
    x = np.full(4096, float(comm.rank))
    t0 = monotonic()
    try:
        # The direct path blocks in one collective; detection must come
        # from the parent's child-exit watcher, not the 60 s op timeout.
        comm.allreduce(x, algorithm="direct")
    except CommAborted:
        return monotonic() - t0
    return None


def measure_detection(detect_intervals, repeats: int):
    """For each heartbeat interval: worst survivor latency over repeats."""
    rows = []
    for detect in detect_intervals:
        worst = 0.0
        for _ in range(repeats):
            out = run_spmd(
                NRANKS,
                _detect_prog,
                backend="process",
                faults=f"crash@rank{CRASH_RANK}:tag=#coll",
                allow_failures=True,
                detect_interval=detect,
                timeout=60.0,
            )
            survivors = [
                out[r] for r in range(NRANKS)
                if r != CRASH_RANK and isinstance(out[r], float)
            ]
            if survivors:
                worst = max(worst, max(survivors))
        rows.append({
            "detect_interval_s": detect,
            "worst_survivor_latency_s": worst,
            "bound_s": 2.0 * detect,
            "within_bound": worst < 2.0 * detect,
        })
    return rows


# -- checkpoint overhead -----------------------------------------------------
def _ckpt_spec() -> NetworkSpec:
    spec = NetworkSpec("fault_recovery")
    spec.add("input", "input", channels=3, height=16, width=16)
    spec.add("c1", "conv", ["input"], filters=8, kernel=3, pad=1, bias=True)
    spec.add("b1", "bn", ["c1"])
    spec.add("r1", "relu", ["b1"])
    spec.add("gap", "gap", ["r1"])
    spec.add("fc", "fc", ["gap"], units=10)
    spec.add("loss", "softmax_ce", ["fc"])
    return spec


def _ckpt_prog(comm, ckdir: str | None, steps: int):
    """Train ``steps`` steps; return (per-step s, save s, restore s)."""
    net = DistNetwork(
        _ckpt_spec(), comm, LayerParallelism(sample=comm.size), seed=0
    )
    trainer = DistTrainer(
        net,
        SGD(lr=0.05, momentum=0.9),
        checkpoint_dir=ckdir,
        checkpoint_every=1 if ckdir else 0,
        rng=np.random.default_rng(7),
    )
    t0 = perf_counter()
    for _ in range(steps):
        x = trainer.rng.standard_normal((8, 3, 16, 16))
        t = trainer.rng.integers(0, 10, size=8)
        trainer.step(x, t)
    per_step = (perf_counter() - t0) / steps
    save_s = restore_s = None
    if ckdir:
        t0 = perf_counter()
        trainer.save_checkpoint()
        save_s = perf_counter() - t0
        t0 = perf_counter()
        trainer.resume()
        restore_s = perf_counter() - t0
    return per_step, save_s, restore_s


def measure_checkpoint(steps: int, repeats: int):
    best = {"plain_step_s": None, "ckpt_step_s": None,
            "save_s": None, "restore_s": None}
    for _ in range(repeats):
        with tempfile.TemporaryDirectory() as ckdir:
            plain = run_spmd(2, _ckpt_prog, None, steps)
            ck = run_spmd(2, _ckpt_prog, ckdir, steps)
        for key, val in (
            ("plain_step_s", max(r[0] for r in plain)),
            ("ckpt_step_s", max(r[0] for r in ck)),
            ("save_s", max(r[1] for r in ck)),
            ("restore_s", max(r[2] for r in ck)),
        ):
            best[key] = val if best[key] is None else min(best[key], val)
    best["overhead_per_step_s"] = best["ckpt_step_s"] - best["plain_step_s"]
    return best


def generate_fault_recovery(
    detect_intervals=FULL_INTERVALS,
    steps: int = 8,
    repeats: int = 3,
    json_path: str = JSON_PATH,
):
    detection = measure_detection(detect_intervals, repeats)
    ckpt = measure_checkpoint(steps, repeats)

    rows = [
        (
            f"{d['detect_interval_s']:.2f}",
            f"{d['worst_survivor_latency_s'] * 1e3:.0f}",
            f"{d['bound_s'] * 1e3:.0f}",
            "yes" if d["within_bound"] else "NO",
        )
        for d in detection
    ]
    table = render_table(
        f"Rank-failure detection latency (process backend, {NRANKS} ranks, "
        "injected crash mid-allreduce, 60 s op timeout)",
        ("interval (s)", "worst survivor (ms)", "2x bound (ms)", "within"),
        rows,
    )
    table += "\n\n" + render_table(
        "Checkpoint overhead (2 ranks, atomic per-rank npz, every step)",
        ("plain step (ms)", "ckpt step (ms)", "overhead (ms)",
         "save (ms)", "restore (ms)"),
        [(
            f"{ckpt['plain_step_s'] * 1e3:.2f}",
            f"{ckpt['ckpt_step_s'] * 1e3:.2f}",
            f"{ckpt['overhead_per_step_s'] * 1e3:.2f}",
            f"{ckpt['save_s'] * 1e3:.2f}",
            f"{ckpt['restore_s'] * 1e3:.2f}",
        )],
    )

    data = {
        "benchmark": "fault_recovery",
        "nranks": NRANKS,
        "detection": detection,
        "checkpoint": ckpt,
    }
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w") as f:
        json.dump(data, f, indent=1)
    table += f"\n[JSON written to {json_path}]"
    return table, data


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="single interval, 2 steps, 1 repeat; JSON to a scratch path",
    )
    args = parser.parse_args()
    try:
        from benchmarks.common import emit
    except ImportError:
        from common import emit
    if args.smoke:
        emit("bench_fault_recovery", generate_fault_recovery(
            detect_intervals=SMOKE_INTERVALS, steps=2, repeats=1,
            json_path=os.path.join(
                RESULTS_DIR, "BENCH_fault_recovery_smoke.json"
            ),
        )[0])
    else:
        emit("bench_fault_recovery", generate_fault_recovery()[0])


if __name__ == "__main__":
    main()
