"""Tracing overhead: the observability layer must cost ~nothing when off.

The span tracer (:mod:`repro.obs.tracer`) is compiled into every hot path
of the engine — collectives, point-to-point, layer forward/backward, the
training step.  The design contract is that a *disabled* tracer is a
module-global integer check plus a cached null context manager, so leaving
the instrumentation in shipping code is free; an *enabled* tracer appends
one tuple per event to a rank-local list, with all JSON/formatting work
deferred to the post-run flush.

Both sides are measured and **gated** as a fraction of the untraced
training step of the smoke net:

* per-primitive costs — ``span()`` enter/exit, ``flow_out``/``flow_in``,
  ``wait_span`` — are timed directly (a million calls disabled, 200k
  enabled into a scratch context);
* the primitives' per-step call counts are read off a real traced run of
  the smoke net (they are deterministic: the span set per step is fixed
  by the network and the collective schedule);
* **disabled** overhead = count x disabled-call cost, gated **< 1%**;
* **enabled** overhead = sum(count_k x enabled-cost_k), gated **< 5%**.

The projection is the *honest* metric on shared/oversubscribed hosts: CI
containers typically expose a single core, where a naive traced-vs-
untraced wall-clock A/B measures scheduler interleaving of the spinning
rank processes, not instrumentation — it swings several percent between
identical runs.  The A/B wall times are still measured and recorded in
the JSON (``ab_*``) for inspection, but the gates ride on the projection.

Run:  PYTHONPATH=src python benchmarks/bench_trace_overhead.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
from time import perf_counter

import numpy as np

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.nn import NetworkSpec, SGD
from repro.obs import tracer

try:
    from benchmarks.common import RESULTS_DIR, emit, render_table
except ImportError:
    from common import RESULTS_DIR, emit, render_table

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_trace_overhead.json")

#: Acceptance gates (fractions of the untraced step time).
DISABLED_GATE = 0.01
ENABLED_GATE = 0.05

N_RANKS = 4
N_GLOBAL = 8


def smoke_net() -> NetworkSpec:
    net = NetworkSpec("trace-overhead")
    net.add("input", "input", channels=3, height=16, width=16)
    net.add("c1", "conv", ["input"], filters=4, kernel=3, stride=1, pad=1, bias=True)
    net.add("b1", "bn", ["c1"])
    net.add("r1", "relu", ["b1"])
    net.add("p1", "pool", ["r1"], mode="max", kernel=2, stride=2)
    net.add("c2", "conv", ["p1"], filters=8, kernel=3, stride=1, pad=1)
    net.add("r2", "relu", ["c2"])
    net.add("gap", "gap", ["r2"])
    net.add("fc", "fc", ["gap"], units=5, bias=True)
    net.add("loss", "softmax_ce", ["fc"])
    return net


def micro_costs(scratch: str, calls: int = 200_000) -> dict:
    """Per-call seconds of each tracer primitive, disabled and enabled."""
    assert not tracer.is_on(), "micro-benchmark requires tracing disabled"
    span = tracer.span

    n_off = max(calls, 1_000_000)
    t0 = perf_counter()
    for _ in range(n_off):
        with span("bench", cat="bench", bytes=0):
            pass
    off_s = (perf_counter() - t0) / n_off

    cfg = tracer.TraceConfig(path=os.path.join(scratch, "micro.trace"), epoch=0.0)
    tracer.enter_rank(0, "bench", trace=cfg, thread_scope=True)
    try:
        ctx = tracer._current()
        t0 = perf_counter()
        for _ in range(calls):
            with span("bench", cat="bench", bytes=0):
                pass
        span_s = (perf_counter() - t0) / calls
        ctx.events.clear()
        t0 = perf_counter()
        for _ in range(calls):
            tracer.flow_out(1, 17)
        flow_s = (perf_counter() - t0) / calls
        ctx.events.clear()
        t0 = perf_counter()
        for _ in range(calls):
            tracer.wait_span("bench", 0.001, 0.0, 0)
        wait_s = (perf_counter() - t0) / calls
        ctx.events.clear()
    finally:
        tracer.exit_rank(thread_scope=True)
    return {
        "disabled_s": off_s,
        "span_s": span_s,
        "flow_s": flow_s,
        "wait_s": wait_s,
    }


def _train_prog(comm, steps: int):
    """The measured section: ``steps`` training steps after one warm-up."""
    rng = np.random.default_rng(0)
    x = rng.standard_normal((N_GLOBAL, 3, 16, 16))
    t = rng.integers(0, 5, size=N_GLOBAL)
    net = DistNetwork(smoke_net(), comm, LayerParallelism(sample=N_RANKS), seed=0)
    trainer = DistTrainer(net, SGD(lr=0.1, momentum=0.9))
    trainer.step(x, t)  # warm pools/plans outside the timed window
    comm.barrier()
    t0 = perf_counter()
    for _ in range(steps):
        trainer.step(x, t)
    return perf_counter() - t0


def _timed_run(steps: int, trace: str | None) -> float:
    return max(run_spmd(N_RANKS, _train_prog, steps, trace=trace))


def event_counts(trace_path: str, steps: int) -> dict:
    """Per-rank-step primitive call counts from a merged trace.

    The warm-up step is traced too; fold it into the divisor.
    """
    with open(trace_path) as fh:
        doc = json.load(fh)
    per = N_RANKS * (steps + 1)
    spans = flows = waits = 0
    for ev in doc["traceEvents"]:
        if ev["ph"] == "X":
            if ev.get("cat") == "wait":
                waits += 1
            else:
                spans += 1
        elif ev["ph"] in ("s", "f"):
            flows += 1
    return {
        "spans_per_step": spans / per,
        "flows_per_step": flows / per,
        "waits_per_step": waits / per,
    }


def generate_trace_overhead(
    steps: int = 10, repeats: int = 3, json_path: str = JSON_PATH
):
    with tempfile.TemporaryDirectory(prefix="repro-bench-trace-") as scratch:
        micro = micro_costs(scratch)

        count_trace = os.path.join(scratch, "count.trace")
        first_traced = _timed_run(steps, count_trace)
        counts = event_counts(count_trace, steps)

        untraced, traced = [], [first_traced]
        for r in range(repeats):  # interleaved A/B; min-of-repeats
            untraced.append(_timed_run(steps, None))
            if len(traced) < repeats:
                traced.append(
                    _timed_run(steps, os.path.join(scratch, f"run{r}.trace"))
                )

    base_s = min(untraced) / steps
    ab_traced_s = min(traced) / steps
    calls_per_step = (
        counts["spans_per_step"]
        + counts["flows_per_step"]
        + counts["waits_per_step"]
    )
    disabled_frac = calls_per_step * micro["disabled_s"] / base_s
    enabled_cost_s = (
        counts["spans_per_step"] * micro["span_s"]
        + counts["flows_per_step"] * micro["flow_s"]
        + counts["waits_per_step"] * micro["wait_s"]
    )
    enabled_frac = enabled_cost_s / base_s
    ab_enabled_frac = max(0.0, (ab_traced_s - base_s) / base_s)

    rows = [
        ["disabled call", f"{micro['disabled_s'] * 1e9:8.1f} ns", "", ""],
        ["enabled span", f"{micro['span_s'] * 1e9:8.1f} ns", "", ""],
        ["enabled flow", f"{micro['flow_s'] * 1e9:8.1f} ns", "", ""],
        ["tracer calls / step", f"{calls_per_step:8.1f}", "", ""],
        ["untraced step", f"{base_s * 1e3:8.3f} ms", "", ""],
        ["traced step (A/B)", f"{ab_traced_s * 1e3:8.3f} ms", "", ""],
        [
            "disabled overhead",
            f"{disabled_frac * 100:8.4f} %",
            f"< {DISABLED_GATE * 100:.0f}%",
            "PASS" if disabled_frac < DISABLED_GATE else "FAIL",
        ],
        [
            "enabled overhead",
            f"{enabled_frac * 100:8.4f} %",
            f"< {ENABLED_GATE * 100:.0f}%",
            "PASS" if enabled_frac < ENABLED_GATE else "FAIL",
        ],
    ]
    table = render_table(
        "Tracing overhead on the smoke net "
        f"({N_RANKS} ranks, {steps} steps, min of {repeats})",
        ["metric", "value", "gate", ""],
        rows,
    )

    payload = {
        "benchmark": "trace_overhead",
        "ranks": N_RANKS,
        "steps": steps,
        "repeats": repeats,
        "micro_ns": {k: v * 1e9 for k, v in micro.items()},
        "counts_per_rank_step": counts,
        "untraced_step_s": base_s,
        "disabled_overhead_frac": disabled_frac,
        "enabled_overhead_frac": enabled_frac,
        "ab_traced_step_s": ab_traced_s,
        "ab_enabled_overhead_frac": ab_enabled_frac,
        "host_cpu_count": os.cpu_count(),
        "gates": {"disabled": DISABLED_GATE, "enabled": ENABLED_GATE},
        "pass": disabled_frac < DISABLED_GATE and enabled_frac < ENABLED_GATE,
    }
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w") as fh:
        json.dump(payload, fh, indent=2)

    assert disabled_frac < DISABLED_GATE, (
        f"disabled-tracer overhead {disabled_frac:.2%} exceeds "
        f"{DISABLED_GATE:.0%} of the untraced step"
    )
    assert enabled_frac < ENABLED_GATE, (
        f"enabled-tracer overhead {enabled_frac:.2%} exceeds "
        f"{ENABLED_GATE:.0%} of the untraced step"
    )
    return table, payload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fewer steps/repeats; JSON to a scratch path",
    )
    args = parser.parse_args()
    if args.smoke:
        emit("bench_trace_overhead", generate_trace_overhead(
            steps=4, repeats=2,
            json_path=os.path.join(
                RESULTS_DIR, "BENCH_trace_overhead_smoke.json"
            ),
        )[0])
    else:
        emit("bench_trace_overhead", generate_trace_overhead()[0])


if __name__ == "__main__":
    main()
