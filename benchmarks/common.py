"""Shared benchmark infrastructure: paper reference data and table output.

Every benchmark regenerates one table or figure of the paper and prints it
next to the published values, writing the rendered table to
``benchmarks/results/<name>.txt`` (and stdout).  The reference numbers below
are transcribed from the paper (Dryden et al., IPDPS 2019).
"""

from __future__ import annotations

import argparse
import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Backends the measured engine benchmarks sweep by default: the thread
#: backend (one thread per rank; overlap wins are synchronization-bound)
#: next to the process backend (one forked process per rank with
#: shared-memory transport; ranks execute in genuine parallel).
BENCH_BACKENDS = ("thread", "process")


def backend_argument(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the shared ``--backend`` flag to a benchmark entry point."""
    parser.add_argument(
        "--backend",
        choices=("thread", "process", "both"),
        default="both",
        help="SPMD world backend(s) to measure (default: both)",
    )
    return parser


def resolve_backends(choice: str) -> tuple[str, ...]:
    """Map a ``--backend`` value to the tuple of backends to measure."""
    return BENCH_BACKENDS if choice == "both" else (choice,)


def multi_backend_main(description: str, name: str, generate_fn) -> None:
    """Entry-point boilerplate for the backend-sweeping benchmarks: parse
    ``--backend`` (thread/process/both) and emit
    ``generate_fn(backends=...)``'s rendered table under ``name``."""
    args = backend_argument(
        argparse.ArgumentParser(description=description)
    ).parse_args()
    emit(name, generate_fn(backends=resolve_backends(args.backend))[0])


def bench_main(description: str, emit_fn) -> None:
    """Entry-point boilerplate for benchmarks whose measured sections run a
    single backend: parse ``--backend``, set it as the session default
    (``REPRO_BACKEND``, honored by every ``run_spmd`` call), then emit."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--backend",
        choices=("thread", "process"),
        default=None,
        help="SPMD world backend for measured sections "
        "(default: $REPRO_BACKEND or thread)",
    )
    args = parser.parse_args()
    if args.backend is not None:
        os.environ["REPRO_BACKEND"] = args.backend
    emit_fn()

# -- Table I: 1K mesh strong scaling (mini-batch time, seconds) ------------------
# rows: N; columns: 1 / 2 / 4 / 8 / 16 GPUs/sample (None = n/a in the paper)
PAPER_TABLE1 = {
    4: (0.403, 0.200, 0.121, 0.0906, 0.066),
    8: (0.399, 0.201, 0.124, 0.0829, 0.0681),
    16: (0.400, 0.201, 0.121, 0.085, 0.0739),
    32: (0.401, 0.207, 0.123, 0.0874, 0.0794),
    64: (0.407, 0.208, 0.124, 0.0911, 0.0839),
    128: (0.407, 0.209, 0.125, 0.0931, 0.0902),
    256: (0.401, 0.209, 0.127, 0.0977, None),
    512: (0.393, 0.209, 0.126, None, None),
    1024: (0.400, 0.211, None, None, None),
}
TABLE1_WAYS = (1, 2, 4, 8, 16)

# -- Table II: 2K mesh strong scaling ------------------------------------------------
# rows: N; columns: 2 / 4 / 8 / 16 GPUs/sample
PAPER_TABLE2 = {
    2: (0.247, 0.120, 0.0859, 0.0683),
    4: (0.249, 0.123, 0.0895, 0.0662),
    8: (0.250, 0.125, 0.0849, 0.0665),
    16: (0.249, 0.121, 0.0848, 0.0681),
    32: (0.251, 0.122, 0.0851, 0.0703),
    64: (0.252, 0.122, 0.0856, 0.0729),
    128: (0.252, 0.122, 0.0867, 0.0748),
    256: (0.250, 0.123, 0.089, None),
    512: (0.249, 0.123, None, None),
}
TABLE2_WAYS = (2, 4, 8, 16)

# -- Table III: ResNet-50 strong scaling ----------------------------------------------
# rows: N; columns: sample (32/GPU) / hybrid 2 GPUs / hybrid 4 GPUs
PAPER_TABLE3 = {
    128: (0.106, 0.0734, 0.0593),
    256: (0.106, 0.0732, 0.0671),
    512: (0.105, 0.0776, 0.0617),
    1024: (0.105, 0.0747, 0.0672),
    2048: (0.108, 0.0733, 0.0651),
    4096: (0.0984, 0.078, 0.066),
    8192: (0.109, 0.0785, 0.0725),
    16384: (0.108, 0.0844, 0.0792),
    32768: (0.109, 0.0869, None),
}

# -- Figure 2/3 microbenchmark anchors (ms, 1 GPU, N=1; read from the plots) ---------
PAPER_FIG2_CONV1 = {"fp_ms": 0.035, "bp_ms": 0.10}
PAPER_FIG2_RES3B = {"fp_ms": 0.04, "bp_ms": 0.05}
PAPER_FIG3_CONV1_1 = {"fp_ms": 7.5, "bp_ms": 30.0}
PAPER_FIG3_CONV6_1 = {"fp_ms": 0.25, "bp_ms": 0.30}


def fmt(value: float | None, unit_ms: bool = False) -> str:
    if value is None:
        return "   n/a "
    if unit_ms:
        return f"{value * 1e3:7.3f}"
    return f"{value:7.4f}"


def render_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
) -> str:
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    lines = [title, "-" * len(title)]
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(header, widths)))
    for r in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def emit(name: str, text: str) -> str:
    """Print a rendered table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    print("\n" + text + f"\n[written to {path}]")
    return path
