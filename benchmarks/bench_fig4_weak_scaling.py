"""Figure 4: weak scaling of the 1K and 2K mesh models up to 2048 GPUs.

Mini-batch time vs #GPUs with one sample per spatial group (so the
mini-batch grows with the machine) for 1/2/4/8/16 GPUs/sample.  Flat curves
= perfect weak scaling.  Includes the paper's two second-order effects:

* the slight upward trend for 8/16 GPUs/sample at large scale (exposed
  allreduces: "our implementation cannot fully overlap global allreduces");
* the sample-parallel degradation at 2048 GPUs from memory pressure
  ("requiring a smaller workspace for cuDNN, impacting local convolution
  algorithm selection") — modeled as a conv slowdown when the memory model
  reports insufficient workspace headroom at scale.
"""


from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.nn.meshnet import mesh_model_1k, mesh_model_2k
from repro.perfmodel import LASSEN, MemoryModel, NetworkCostModel

try:
    from benchmarks.common import emit, render_table
except ImportError:
    from common import emit, render_table

GPU_COUNTS = (4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)
#: Conv slowdown when cuDNN must fall back to a smaller workspace.
WORKSPACE_PRESSURE_FACTOR = 1.12
#: cuDNN wants a few GiB of free memory for its fastest algorithms (plus
#: allocator fragmentation slack); below this, algorithm selection degrades.
PRESSURE_HEADROOM_BYTES = 2.0 * 1024**3


def weak_scaling_point(spec, memory: MemoryModel, model: NetworkCostModel,
                       gpus: int, ways: int) -> float | None:
    if gpus % ways:
        return None
    n = gpus // ways  # one sample per spatial group
    if n < 1:
        return None
    par = LayerParallelism.spatial_square(sample=n, ways=ways)
    strategy = ParallelStrategy.uniform(par)
    if not memory.fits(n, strategy):
        return None
    t = model.minibatch_time(n, strategy)
    # Memory-pressure penalty: cuDNN prefers a workspace several times the
    # capped allocation for its fastest algorithms; when the headroom after
    # activations + comm buffers cannot provide it, convolutions slow down
    # ("requiring a smaller workspace for cuDNN, impacting local
    # convolution algorithm selection", §VI-B1).
    bd = memory.breakdown(n, strategy)
    headroom = LASSEN.gpu.memory_bytes - bd.total
    if headroom < PRESSURE_HEADROOM_BYTES:
        t *= WORKSPACE_PRESSURE_FACTOR
    return t


def generate_fig4(which: str) -> tuple[str, dict]:
    spec = mesh_model_1k() if which == "1k" else mesh_model_2k()
    ways_list = (1, 2, 4, 8, 16) if which == "1k" else (2, 4, 8, 16)
    model = NetworkCostModel(spec, LASSEN)
    memory = MemoryModel(spec, LASSEN)
    series: dict[int, list[float | None]] = {w: [] for w in ways_list}
    rows = []
    for gpus in GPU_COUNTS:
        row = [str(gpus)]
        for w in ways_list:
            t = weak_scaling_point(spec, memory, model, gpus, w)
            series[w].append(t)
            row.append(f"{t:7.4f}" if t is not None else "   n/a ")
        rows.append(row)
    text = render_table(
        f"Figure 4 — {which.upper()} mesh model weak scaling "
        "(mini-batch seconds vs #GPUs; columns = GPUs/sample)",
        ["#GPUs"] + [f"{w} g/s" for w in ways_list],
        rows,
    )
    return text, series


class TestFig4:
    def test_series_1k(self, benchmark):
        text, series = benchmark(generate_fig4, "1k")
        emit("fig4_weak_scaling_1k", text)
        # Near-perfect weak scaling at 2/4 GPUs/sample (flat within 10%).
        for w in (2, 4):
            vals = [t for t in series[w] if t is not None]
            assert max(vals) / min(vals) < 1.10

    def test_series_2k(self, benchmark):
        text, series = benchmark(generate_fig4, "2k")
        emit("fig4_weak_scaling_2k", text)
        vals = [t for t in series[4] if t is not None]
        assert max(vals) / min(vals) < 1.10

    def test_sample_parallel_unavailable_for_2k(self):
        _, series = generate_fig4("2k")
        assert 1 not in series  # memory requires >= 2-way spatial

    def test_sample_parallel_degrades_at_2048(self):
        """The paper's memory-pressure uptick for 1 GPU/sample at 2048."""
        _, series = generate_fig4("1k")
        one = series[1]
        small_scale = one[GPU_COUNTS.index(64)]
        at_2048 = one[GPU_COUNTS.index(2048)]
        assert at_2048 > small_scale * 1.05

    def test_fine_decomposition_trends_up_slightly(self):
        """8/16 GPUs/sample drift upward at scale (allreduce exposure)."""
        _, series = generate_fig4("1k")
        s16 = [t for t in series[16] if t is not None]
        assert s16[-1] >= s16[0]


if __name__ == "__main__":
    emit("fig4_weak_scaling_1k", generate_fig4("1k")[0])
    emit("fig4_weak_scaling_2k", generate_fig4("2k")[0])
