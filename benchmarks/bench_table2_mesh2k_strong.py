"""Table II: 2K mesh model strong scaling (speedup over 2 GPUs/sample)."""


from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.nn.meshnet import mesh_model_2k
from repro.perfmodel import LASSEN, NetworkCostModel

try:
    from benchmarks.common import PAPER_TABLE2, TABLE2_WAYS, emit, fmt, render_table
except ImportError:
    from common import PAPER_TABLE2, TABLE2_WAYS, emit, fmt, render_table

MAX_GPUS = 2048


def predicted_cell(model: NetworkCostModel, n: int, ways: int) -> float | None:
    par = LayerParallelism.spatial_square(sample=n, ways=ways)
    if par.nranks > MAX_GPUS:
        return None
    return model.minibatch_time(n, ParallelStrategy.uniform(par))


def generate_table2() -> tuple[str, dict]:
    model = NetworkCostModel(mesh_model_2k(), LASSEN)
    ours: dict[int, list[float | None]] = {}
    rows = []
    for n, paper_row in PAPER_TABLE2.items():
        our_row = [predicted_cell(model, n, w) for w in TABLE2_WAYS]
        ours[n] = our_row
        cells = [str(n)]
        for pv, ov in zip(paper_row, our_row):
            ov = ov if pv is not None else None
            cells.append(fmt(pv))
            cells.append(fmt(ov))
            if pv and ov:
                cells.append(f"{paper_row[0] / pv:.1f}x/{our_row[0] / ov:.1f}x")
            else:
                cells.append("n/a")
        rows.append(cells)
    header = ["N"]
    for w in TABLE2_WAYS:
        header += [f"{w}g paper", f"{w}g ours", "spdup p/o"]
    text = render_table(
        "Table II — 2K mesh strong scaling (mini-batch seconds; speedup vs 2 GPUs/sample)",
        header,
        rows,
    )
    return text, ours


def test_table2_reproduction(benchmark):
    text, ours = benchmark(generate_table2)
    emit("table2_mesh2k_strong", text)
    for n, row in ours.items():
        paper = PAPER_TABLE2[n]
        # ~2x from 2->4 GPUs/sample, ~2.9x at 8, ~3.6x at 16 (paper bands).
        if row[1] is not None and paper[1] is not None:
            assert 1.6 <= row[0] / row[1] <= 2.3
        if row[3] is not None and paper[3] is not None:
            assert 2.7 <= row[0] / row[3] <= 5.3

    # Sample parallelism is impossible for the 2K model (memory), which is
    # why the table has no 1 GPU/sample column.
    from repro.perfmodel import MemoryModel

    assert not MemoryModel(mesh_model_2k(), LASSEN).fits(1, LayerParallelism())


def test_table2_shape_vs_paper(benchmark):
    """Per-column relative error against the paper stays within 60%
    (the 2K absolutes run ~1.3x slow in our calibration — see
    EXPERIMENTS.md — but every speedup ratio matches)."""

    def check():
        model = NetworkCostModel(mesh_model_2k(), LASSEN)
        worst = 0.0
        for n, paper_row in PAPER_TABLE2.items():
            for w, pv in zip(TABLE2_WAYS, paper_row):
                if pv is None:
                    continue
                ov = predicted_cell(model, n, w)
                worst = max(worst, abs(ov / pv - 1.0))
        return worst

    assert benchmark(check) < 0.60


if __name__ == "__main__":
    emit("table2_mesh2k_strong", generate_table2()[0])
