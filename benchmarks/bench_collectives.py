"""Collective-algorithm sweep: modeled vs measured time and wire volume.

Sweeps op x algorithm x payload size x backend through the engine's real
collectives and lines three things up per configuration:

* **measured_s** — wall time per call (median of repeats, ranks
  barrier-synchronized around a timed loop);
* **modeled_s** — the alpha-beta cost model's prediction for the *same*
  algorithm (``allreduce_time`` with the machine's link parameters — the
  paper's AR(p, n), Thakur et al. forms);
* **wire_sent_per_rank** vs **modeled_wire_per_rank** — bytes the rank
  actually put on the wire (``CommStats`` wire counters; on the process
  backend these are backed by the shared-memory transport counters)
  against ``allreduce_wire_bytes``: ring/Rabenseifner move ``2n(p-1)/p``
  per rank where the legacy ``"direct"`` deposit-combine path moves
  ``n(p-1)`` — the bandwidth-optimality the paper's strong-scaling
  argument assumes, now visible as data.

Emits a table and ``benchmarks/results/BENCH_collectives.json`` (smoke
runs write ``BENCH_collectives_smoke.json`` so the tracked trajectory is
never clobbered).

Run:  PYTHONPATH=src python benchmarks/bench_collectives.py [--backend both]
"""

from __future__ import annotations

import json
import os
from time import perf_counter

import numpy as np

from repro.comm import run_spmd
from repro.comm.collective_models import (
    allreduce_time,
    allreduce_wire_bytes,
    reduce_scatter_time,
)
from repro.perfmodel.machine import LASSEN

try:
    from benchmarks.common import (
        BENCH_BACKENDS, RESULTS_DIR, multi_backend_main, render_table,
    )
except ImportError:
    from common import (
        BENCH_BACKENDS, RESULTS_DIR, multi_backend_main, render_table,
    )

JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_collectives.json")

ALLREDUCE_ALGS = ("direct", "ring", "rabenseifner", "recursive_doubling")
RS_ALGS = ("direct", "ring")

#: Payload sizes in bytes (float64 elements = size // 8): one below the
#: Thakur small-message cutoff, the rest bandwidth-bound.
FULL_SIZES = (1024, 65_536, 1_048_576)
SMOKE_SIZES = (1024, 65_536)


def _bench_prog(comm, op: str, algorithm: str, nbytes: int, iters: int):
    """Timed loop on every rank; returns (seconds/call, wire sent, shm delta)."""
    n = nbytes // 8
    x = np.full(n, 1.0 + comm.rank)
    parts = [np.full(max(1, n // comm.size), 1.0 + comm.rank) for _ in range(comm.size)]

    def call():
        if op == "allreduce":
            comm.allreduce(x, algorithm=algorithm)
        else:
            comm.reduce_scatter(parts, algorithm=algorithm)

    call()  # warm pools, plans, arenas
    comm.stats.reset()
    transport = getattr(comm._world, "transport", None)
    shm_before = transport["shm_bytes"] if transport else 0
    comm.barrier()
    t0 = perf_counter()
    for _ in range(iters):
        call()
    comm.barrier()
    seconds = (perf_counter() - t0) / iters
    wire = comm.stats.total_wire_sent(op) / iters
    shm = ((transport["shm_bytes"] - shm_before) / iters) if transport else None
    return seconds, wire, shm


def generate_collectives(
    ranks=(4, 8),
    sizes=FULL_SIZES,
    backends=BENCH_BACKENDS,
    iters=5,
    repeats=3,
    json_path=JSON_PATH,
):
    configs = []
    rows = []
    for backend in backends:
        for p in ranks:
            link = LASSEN.link_for_group(p)
            for op, algs in (("allreduce", ALLREDUCE_ALGS), ("reduce_scatter", RS_ALGS)):
                for alg in algs:
                    for nbytes in sizes:
                        best = None
                        for _ in range(repeats):
                            res = run_spmd(
                                p, _bench_prog, op, alg, nbytes, iters,
                                backend=backend,
                            )
                            secs = max(r[0] for r in res)  # slowest rank
                            if best is None or secs < best[0]:
                                # Worst-case rank for the wire columns,
                                # matching allreduce_wire_bytes' convention
                                # (ranks differ on non-power-of-two
                                # recursive doubling).
                                best = (
                                    secs,
                                    max(r[1] for r in res),
                                    max(r[2] for r in res)
                                    if res[0][2] is not None
                                    else None,
                                )
                        measured_s, wire, shm = best
                        if op == "allreduce":
                            modeled_s = allreduce_time(p, nbytes, link, alg)
                            modeled_wire = allreduce_wire_bytes(p, nbytes, alg)
                        else:
                            modeled_s = reduce_scatter_time(p, nbytes, link)
                            modeled_wire = nbytes * (p - 1) / p
                        cfg = {
                            "backend": backend,
                            "op": op,
                            "algorithm": alg,
                            "ranks": p,
                            "payload_bytes": nbytes,
                            "measured_s": measured_s,
                            "modeled_s": modeled_s,
                            "wire_sent_per_rank": wire,
                            "modeled_wire_per_rank": modeled_wire,
                            "shm_bytes_per_rank": shm,
                        }
                        configs.append(cfg)
                        rows.append([
                            backend, op, alg, p, nbytes,
                            f"{measured_s * 1e3:.3f}",
                            f"{modeled_s * 1e3:.4f}",
                            f"{wire:.0f}",
                            f"{modeled_wire:.0f}",
                            "-" if shm is None else f"{shm:.0f}",
                        ])
    data = {"iters": iters, "repeats": repeats, "configs": configs}
    os.makedirs(os.path.dirname(json_path), exist_ok=True)
    with open(json_path, "w") as f:
        json.dump(data, f, indent=1)

    table = render_table(
        "Collective algorithms: modeled vs measured (per call, per rank)",
        ["backend", "op", "algorithm", "p", "bytes",
         "meas ms", "model ms", "wire B", "model wire B", "shm B"],
        rows,
    )
    note = (
        "\nwire B: bytes this rank sent on the wire (CommStats); shm B: the\n"
        "process backend's shared-memory transport counter for the same\n"
        "calls.  ring/rabenseifner ~ 2n(p-1)/p vs direct's n(p-1): the\n"
        "bandwidth-optimal allreduce of the paper's AR(p, n) model.\n"
        f"[JSON written to {json_path}]"
    )
    return table + note, data


def main() -> None:
    multi_backend_main(
        __doc__, "bench_collectives", generate_collectives
    )


if __name__ == "__main__":
    main()
