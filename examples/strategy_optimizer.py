"""Automatically choose parallel execution strategies (paper §V-C).

Given a platform (modeled Lassen), a network, a rank budget, and a
mini-batch size, the optimizer generates candidate distributions per layer
and picks the assignment minimizing predicted mini-batch time via shortest
path — "a parallel execution strategy with the fastest end-to-end runtime".

Shows the three regimes the paper describes:
 1. plenty of samples + memory -> pure sample parallelism wins everywhere;
 2. large samples, tight memory (2K mesh) -> spatial parallelism is forced;
 3. strong scaling past the mini-batch size -> hybrid decompositions.

Run:  python examples/strategy_optimizer.py
"""

from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.core.strategy import StrategyOptimizer
from repro.nn.meshnet import mesh_model_2k
from repro.nn.resnet import build_resnet50
from repro.perfmodel import LASSEN, MemoryModel, NetworkCostModel


def show(label: str, spec, ranks: int, n: int) -> None:
    print("=" * 72)
    print(f"{label}: {ranks} GPUs, mini-batch {n}")
    print("=" * 72)
    opt = StrategyOptimizer(spec, LASSEN, total_ranks=ranks, n_global=n)
    report = opt.optimize()
    print(f"  {report.describe()}")
    by_dist: dict[str, list[str]] = {}
    for layer in spec.conv_layers():
        d = report.strategy.for_layer(layer.name).describe()
        by_dist.setdefault(d, []).append(layer.name)
    for d, layers in by_dist.items():
        preview = ", ".join(layers[:4]) + ("..." if len(layers) > 4 else "")
        print(f"  {d:<38s} <- {len(layers):3d} conv layers ({preview})")

    # Compare against uniform baselines.
    model = NetworkCostModel(spec, LASSEN)
    memory = MemoryModel(spec, LASSEN)
    for baseline in (
        LayerParallelism(sample=min(ranks, n)),
        LayerParallelism.spatial_square(sample=max(1, min(n, ranks) // 4), ways=4)
        if ranks % 4 == 0 else None,
    ):
        if baseline is None or baseline.nranks != ranks:
            continue
        strategy = ParallelStrategy.uniform(baseline)
        feasible = memory.fits(n, strategy)
        t = model.minibatch_time(n, strategy) if feasible else float("nan")
        print(
            f"  uniform {baseline.describe():<32s} "
            + (f"{t * 1e3:9.2f} ms" if feasible else "  infeasible (memory)")
        )
    print()


def main() -> None:
    show("ResNet-50, plenty of samples", build_resnet50(), ranks=16, n=512)
    show("ResNet-50, strong-scaled past the batch", build_resnet50(), ranks=16, n=8)
    show("2K mesh model (memory-bound)", mesh_model_2k(), ranks=16, n=2)


if __name__ == "__main__":
    main()
