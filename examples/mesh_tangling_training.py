"""Train a mesh-tangling segmentation model with hybrid parallelism.

The paper's motivating workload (§I, §VI): predict, per pixel, whether a
hydrodynamics mesh cell needs relaxation to prevent tangling.  The full
2048x2048 model cannot fit even one sample in 16 GB of GPU memory, which is
why spatial parallelism exists; here we train a scaled-down model of the
same structure on the synthetic mesh-tangling generator under hybrid
sample x spatial parallelism, and report loss and pixel accuracy.

Run:  python examples/mesh_tangling_training.py
"""


from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.data import MeshTanglingDataset
from repro.nn import SGD
from repro.nn.meshnet import build_mesh_model

RESOLUTION = 64
STEPS = 12


def build_model():
    # Same family as the paper's models (stride-2 first conv per block,
    # conv-BN-ReLU blocks, 1x1 prediction head), scaled to laptop size.
    return build_mesh_model(
        resolution=RESOLUTION,
        convs_per_block=2,
        block_channels=(16, 24),
        input_channels=18,
        name="mesh-example",
    )


def main() -> None:
    spec = build_model()
    print(spec.summary())
    shapes = spec.infer_shapes()
    _, th, tw = shapes["predict"]
    stride = RESOLUTION // th
    data = MeshTanglingDataset(
        resolution=RESOLUTION, label_stride=stride, seed=3
    )
    x, t = data.batch(4)
    print(f"\nbatch: x {x.shape}, labels {t.shape} "
          f"({t.mean() * 100:.1f}% tangling pixels)")

    parallelism = LayerParallelism(sample=2, height=2, width=1)
    print(f"parallelism: {parallelism.describe()} "
          f"({parallelism.nranks} in-process ranks)\n")

    def prog(comm):
        net = DistNetwork(spec, comm, parallelism, seed=11)
        trainer = DistTrainer(net, SGD(lr=2.0, momentum=0.9))
        history = []
        for step in range(STEPS):
            loss = trainer.step(x, t)
            logits = net.gather_activation("predict")  # collective: all ranks
            acc = float(((logits > 0) == (t > 0.5)).mean())
            history.append((loss, acc))
            if comm.rank == 0:
                print(f"  step {step:2d}  loss {loss:.4f}  pixel-acc {acc:.3f}")
        return history

    history = [h for h in run_spmd(parallelism.nranks, prog) if h][0]
    first_loss, first_acc = history[0]
    last_loss, last_acc = history[-1]
    print(f"\nloss {first_loss:.4f} -> {last_loss:.4f}; "
          f"pixel accuracy {first_acc:.3f} -> {last_acc:.3f}")
    assert last_loss < first_loss, "training did not reduce the loss"


if __name__ == "__main__":
    main()
