"""Quickstart: spatial-parallel convolution that exactly replicates a
single-device result, then a few distributed training steps.

Demonstrates the paper's core claim (§III): "our algorithms exactly
replicate convolution as if it were performed on a single GPU" — here with
4 in-process ranks arranged as a 2x2 spatial grid, then as hybrid
sample x spatial parallelism for end-to-end training.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism
from repro.core.dist_conv import DistConv2d
from repro.core.parallelism import activation_dist
from repro.nn import LocalNetwork, NetworkSpec, SGD
from repro.nn import functional as F
from repro.tensor import DistTensor, ProcessGrid


def part1_exact_distributed_convolution() -> None:
    print("=" * 72)
    print("Part 1 — spatially partitioned convolution == single-device result")
    print("=" * 72)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 3, 32, 32))  # one sample, 3 channels
    w = rng.standard_normal((8, 3, 3, 3))  # 8 filters, 3x3

    y_single = F.conv2d_forward(x, w, stride=1, pad=1)

    def prog(comm):
        # 4 ranks as a 1x1x2x2 grid: H and W each split in half; each rank
        # owns a 16x16 tile and exchanges 1-pixel halos with its neighbors.
        grid = ProcessGrid(comm, (1, 1, 2, 2))
        xd = DistTensor.from_global(grid, activation_dist(grid.shape, x.shape), x)
        conv = DistConv2d(grid, w, stride=1, pad=1)
        y = conv.forward(xd)
        print(
            f"  rank {comm.rank}: local tile {xd.local.shape} -> "
            f"output tile {y.local.shape}, "
            f"halo bytes served: {comm.stats.collective_bytes.get('region_data', 0)}"
        )
        return y.to_global()

    results = run_spmd(4, prog)
    err = max(float(np.abs(r - y_single).max()) for r in results)
    print(f"  max |distributed - single device| = {err:.2e}")
    assert err < 1e-10


def tiny_segmentation_net() -> NetworkSpec:
    net = NetworkSpec("quickstart")
    net.add("input", "input", channels=3, height=32, width=32)
    net.add("c1", "conv", ["input"], filters=8, kernel=3, stride=1, pad=1)
    net.add("b1", "bn", ["c1"])
    net.add("r1", "relu", ["b1"])
    net.add("c2", "conv", ["r1"], filters=8, kernel=3, stride=2, pad=1)
    net.add("b2", "bn", ["c2"])
    net.add("r2", "relu", ["b2"])
    net.add("predict", "conv", ["r2"], filters=1, kernel=1, bias=True)
    net.add("loss", "bce", ["predict"])
    return net


def part2_hybrid_training() -> None:
    print()
    print("=" * 72)
    print("Part 2 — hybrid sample x spatial training matches local training")
    print("=" * 72)
    spec = tiny_segmentation_net()
    rng = np.random.default_rng(1)
    x = rng.standard_normal((4, 3, 32, 32))
    t = (rng.random((4, 1, 16, 16)) > 0.5).astype(float)

    # Single-device reference.
    local = LocalNetwork(spec, seed=7)
    opt = SGD(lr=0.5)
    ref_losses = []
    for _ in range(5):
        loss, grads = local.loss_and_grad(x, t)
        opt.step(local.params, grads)
        ref_losses.append(loss)

    # Hybrid: 2 sample groups x 2-way spatial = 4 ranks.
    def prog(comm):
        net = DistNetwork(
            spec, comm, LayerParallelism(sample=2, height=2, width=1), seed=7
        )
        trainer = DistTrainer(net, SGD(lr=0.5))
        return [trainer.step(x, t) for _ in range(5)]

    dist_losses = run_spmd(4, prog)[0]
    print(f"  single-device losses: {[f'{v:.6f}' for v in ref_losses]}")
    print(f"  distributed  losses: {[f'{v:.6f}' for v in dist_losses]}")
    assert np.allclose(ref_losses, dist_losses, rtol=1e-9)
    print("  bitwise-matching training trajectories (to fp accumulation).")


if __name__ == "__main__":
    part1_exact_distributed_convolution()
    part2_hybrid_training()
    print("\nQuickstart complete.")
