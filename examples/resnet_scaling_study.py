"""Scaling study: where does spatial parallelism pay off? (paper §VI)

Sweeps strong scaling of ResNet-50 and the mesh models with the calibrated
performance model, reporting speedups, the memory picture, and the
crossover where sample parallelism stops being available or profitable —
the quantitative version of the paper's headline message: "exploiting
parallelism within the spatial domain allows scaling to continue beyond
the mini-batch size."

Run:  python examples/resnet_scaling_study.py
"""

from repro.core.parallelism import LayerParallelism, ParallelStrategy
from repro.nn.meshnet import mesh_model_1k, mesh_model_2k
from repro.nn.resnet import build_resnet50
from repro.perfmodel import LASSEN, MemoryModel, NetworkCostModel


def strong_scaling(label: str, spec, n: int, ways_list) -> None:
    print("=" * 72)
    print(f"{label}: strong scaling at mini-batch {n}")
    print("=" * 72)
    model = NetworkCostModel(spec, LASSEN)
    memory = MemoryModel(spec, LASSEN)
    base = None
    print(f"  {'decomposition':<32s} {'GPUs':>5s} {'time':>10s} "
          f"{'speedup':>8s} {'mem/GPU':>9s}")
    for ways in ways_list:
        par = LayerParallelism.spatial_square(sample=n, ways=ways)
        strategy = ParallelStrategy.uniform(par)
        mem = memory.required_bytes(n, strategy) / 1024**3
        if not memory.fits(n, strategy):
            print(f"  {par.describe():<32s} {par.nranks:>5d} "
                  f"{'—':>10s} {'OOM':>8s} {mem:>8.1f}G")
            continue
        t = model.minibatch_time(n, strategy)
        if base is None:
            base = t
        print(f"  {par.describe():<32s} {par.nranks:>5d} {t * 1e3:>8.2f}ms "
              f"{base / t:>7.2f}x {mem:>8.1f}G")
    print()


def memory_story() -> None:
    print("=" * 72)
    print("Why spatial parallelism exists: the memory picture (16 GB V100)")
    print("=" * 72)
    for label, spec in (("1K mesh", mesh_model_1k()), ("2K mesh", mesh_model_2k())):
        memory = MemoryModel(spec, LASSEN)
        for ways in (1, 2, 4):
            par = LayerParallelism.spatial_square(sample=1, ways=ways)
            bd = memory.breakdown(1, ParallelStrategy.uniform(par))
            fits = "fits" if bd.total <= LASSEN.gpu.memory_bytes else "EXCEEDS 16 GB"
            print(f"  {label}, 1 sample, {ways}-way spatial: "
                  f"{bd.total / 1024**3:6.1f} GiB/GPU  ({fits})")
    bd = MemoryModel(mesh_model_2k(), LASSEN).breakdown(
        1, ParallelStrategy.uniform(LayerParallelism())
    )
    print("\n  2K mesh, one sample, no spatial parallelism — breakdown:")
    print(bd.summary())
    print()


def main() -> None:
    strong_scaling("ResNet-50 (N=256, 32 samples/group)", build_resnet50(),
                   256 // 32 * 32, [1, 2, 4])
    strong_scaling("1K mesh model (N=8)", mesh_model_1k(), 8, [1, 2, 4, 8, 16])
    strong_scaling("2K mesh model (N=4)", mesh_model_2k(), 4, [1, 2, 4, 8, 16])
    memory_story()


if __name__ == "__main__":
    main()
