"""Traced training: per-rank spans merged into one Perfetto-loadable timeline.

Runs a 2-epoch training job on 4 process-backend ranks with span tracing
enabled (``run_spmd(..., trace=...)``), then

1. validates the merged Chrome-trace JSON (every span closed, per-track
   monotonic, every send->recv flow resolved),
2. checks that the analyzer's per-op comm-byte rows agree *exactly* with
   the live ``CommStats`` counters each rank returned, and
3. prints the ``repro.obs.analyze`` report — critical path, exposed vs
   hidden wait time, and the measured-vs-modeled per-layer table backed by
   ``TrainingStepSimulator``.

Run:  python examples/traced_training.py [trace-output-path]

Load the produced trace file in https://ui.perfetto.dev to browse the
per-rank tracks and the flow arrows connecting matching sends/receives.
"""

import json
import os
import sys
import tempfile

import numpy as np

from repro.comm import run_spmd
from repro.core import DistNetwork, DistTrainer, LayerParallelism, ParallelStrategy
from repro.nn import NetworkSpec, SGD
from repro.obs import analyze
from repro.obs.export import validate_file
from repro.obs.metrics import comm_stats_snapshot
from repro.perfmodel.machine import MachineSpec

N_RANKS = 4
N_GLOBAL = 8
EPOCHS = 2


def conv_net() -> NetworkSpec:
    net = NetworkSpec("traced-smoke")
    net.add("input", "input", channels=3, height=16, width=16)
    net.add("c1", "conv", ["input"], filters=4, kernel=3, stride=1, pad=1, bias=True)
    net.add("b1", "bn", ["c1"])
    net.add("r1", "relu", ["b1"])
    net.add("p1", "pool", ["r1"], mode="max", kernel=2, stride=2)
    net.add("c2", "conv", ["p1"], filters=8, kernel=3, stride=1, pad=1)
    net.add("r2", "relu", ["c2"])
    net.add("gap", "gap", ["r2"])
    net.add("fc", "fc", ["gap"], units=5, bias=True)
    net.add("loss", "softmax_ce", ["fc"])
    return net


def prog(comm):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((N_GLOBAL, 3, 16, 16))
    t = rng.integers(0, 5, size=N_GLOBAL)
    net = DistNetwork(
        conv_net(), comm, LayerParallelism(sample=N_RANKS), seed=0
    )
    trainer = DistTrainer(net, SGD(lr=0.1, momentum=0.9))
    trainer.fit([(x, t)], epochs=EPOCHS)
    return comm_stats_snapshot(comm.stats)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    tmp = None
    if argv:
        trace_path = argv[0]
    else:
        tmp = tempfile.mkdtemp(prefix="repro-trace-")
        trace_path = os.path.join(tmp, "training.trace")

    snapshots = run_spmd(N_RANKS, prog, backend="process", trace=trace_path)

    problems = validate_file(trace_path)
    if problems:
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        return 1
    print(f"trace written and validated: {trace_path}")

    # Analyzer comm rows must equal the live CommStats counters exactly.
    doc = analyze.load_trace(trace_path)
    rows = analyze.comm_rows(doc)
    live: dict = {}
    for snap in snapshots:
        for op, calls in snap["collectives"].items():
            live.setdefault(op, {"calls": 0, "bytes": 0})["calls"] += int(calls)
        for op, nbytes in snap["collective_bytes"].items():
            live.setdefault(op, {"calls": 0, "bytes": 0})["bytes"] += int(nbytes)
    assert rows == live, f"analyzer rows diverge from live stats:\n{rows}\n{live}"
    print(f"comm rows byte-exact with live CommStats across {len(rows)} ops")

    # Model the same step with the simulator and print the full report.
    model = analyze.model_predictions(
        conv_net(),
        MachineSpec(),
        N_GLOBAL,
        ParallelStrategy.uniform(LayerParallelism(sample=N_RANKS)),
    )
    model_path = trace_path + ".model.json"
    with open(model_path, "w") as fh:
        json.dump(model, fh, indent=2)

    return analyze.main([trace_path, "--model", model_path])


if __name__ == "__main__":
    raise SystemExit(main())
